"""Failure injection: capacity exhaustion, overflow recovery, bad inputs.

Fixed-size structures must fail loudly and recoverably, and the pipeline's
overflow-regrow path (the runtime patch over an Extra-P underestimate)
must preserve results.
"""
from __future__ import annotations

import os

import numpy as np
import pytest

from repro.detection.api import screen
from repro.detection.gridbased import _regrow
from repro.detection.types import ScreeningConfig
from repro.orbits.elements import OrbitalElementsArray
from repro.parallel.multidevice import screen_grid_multidevice
from repro.parallel.processes import PersistentShardPool
from repro.population.generator import generate_population
from repro.spatial.conjmap import ConjunctionMap
from repro.spatial.grid import UniformGrid
from repro.spatial.hashmap import HashMapFullError


class TestConjunctionMapOverflowRecovery:
    def test_regrow_preserves_records(self):
        cm = ConjunctionMap(16)
        cm.insert(1, 2, 0)
        cm.insert_batch(np.array([3, 5]), np.array([4, 6]), step=1)
        grown = _regrow(cm)
        assert grown.capacity == 32
        i, j, s = grown.records()
        assert list(zip(i, j, s)) == [(1, 2, 0), (3, 4, 1), (5, 6, 1)]

    def test_screening_survives_tiny_conjunction_map(self, monkeypatch, crossing_pair):
        """Force a pathologically small initial map: the pipeline must
        regrow transparently and produce identical results."""
        import repro.detection.gridbased as gb

        cfg = ScreeningConfig(threshold_km=5.0, duration_s=6000.0, seconds_per_sample=1.0)
        reference = screen(crossing_pair, cfg, method="grid")

        monkeypatch.setattr(
            gb, "_make_conjmap", lambda n, config, variant, sps: ConjunctionMap(2)
        )
        squeezed = screen(crossing_pair, cfg, method="grid")
        assert squeezed.unique_pairs() == reference.unique_pairs()
        assert squeezed.n_conjunctions == reference.n_conjunctions

    def test_regrow_then_replay_does_not_duplicate_records(self):
        """Regression: a mid-step overflow regrows the map (re-inserting the
        partial step's CAS records via the batch path) and then replays the
        step's CAS inserts.  The seed code concatenated both paths in
        records() without dedup, so the replayed records appeared twice and
        duplicate (i, j, step) work reached refinement."""
        cm = ConjunctionMap(16)
        # A completed earlier step plus a partial current step (CAS path).
        cm.insert_batch(np.array([1, 3]), np.array([2, 4]), step=0)
        for a, b in [(1, 2), (3, 4), (5, 6), (7, 8)]:
            cm.insert(a, b, 1)
        grown = _regrow(cm)
        # Replay step 1 in full against the regrown map, as the recovery
        # loop does after `continue`.
        for a, b in [(1, 2), (3, 4), (5, 6), (7, 8)]:
            grown.insert(a, b, 1)
        i, j, s = grown.records()
        records = list(zip(i.tolist(), j.tolist(), s.tolist()))
        assert records == [
            (1, 2, 0), (3, 4, 0), (1, 2, 1), (3, 4, 1), (5, 6, 1), (7, 8, 1),
        ]
        assert len(records) == len(set(records)) == 6
        assert grown.size == 6

    def test_fused_overflow_replay_is_insert_only(self, monkeypatch):
        """Regression: the fused round loop used to `continue` to the top of
        the round on ConjunctionMapFullError, re-running the batched Kepler
        solve and grid build although the emitted arrays were already in
        hand.  The replay must be insert-only: exactly one propagation per
        round no matter how often the map overflows."""
        import repro.detection.gridbased as gb
        from repro.orbits.propagation import Propagator

        base = generate_population(16, seed=4)
        pop = OrbitalElementsArray.concatenate([base, base])
        cfg = ScreeningConfig(threshold_km=5.0, duration_s=120.0, seconds_per_sample=2.0)
        reference = screen(pop, cfg, method="grid", backend="vectorized")

        calls = {"n": 0}
        orig = Propagator.positions_batch

        def counting(self, times):
            calls["n"] += 1
            return orig(self, times)

        monkeypatch.setattr(Propagator, "positions_batch", counting)
        monkeypatch.setattr(
            gb, "_make_conjmap", lambda n, config, variant, sps: ConjunctionMap(2)
        )
        squeezed = screen(pop, cfg, method="grid", backend="vectorized")
        n_steps = len(cfg.sample_times())
        rounds = -(-n_steps // 16)  # default vectorized round size
        assert calls["n"] == rounds  # one propagation per round, replays free
        assert squeezed.unique_pairs() == reference.unique_pairs()
        assert squeezed.n_conjunctions == reference.n_conjunctions

    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_mid_step_overflow_resumes_without_grid_rebuild(self, monkeypatch, backend):
        """Regression: the per-pair insert loop used to `continue` the whole
        step after a mid-step overflow, rebuilding the grid and re-walking
        every pair from index 0.  It must resume from the failing pair:
        exactly one grid build per step, overflow or not."""
        import repro.detection.gridbased as gb

        base = generate_population(12, seed=4)
        pop = OrbitalElementsArray.concatenate([base, base])
        cfg = ScreeningConfig(threshold_km=5.0, duration_s=60.0, seconds_per_sample=2.0)
        reference = screen(pop, cfg, method="grid", backend="serial")

        builds = {"n": 0}
        orig = gb._build_grid

        def counting(ids, positions, cell, config, backend_):
            builds["n"] += 1
            return orig(ids, positions, cell, config, backend_)

        monkeypatch.setattr(gb, "_build_grid", counting)
        monkeypatch.setattr(
            gb, "_make_conjmap", lambda n, config, variant, sps: ConjunctionMap(2)
        )
        squeezed = screen(pop, cfg, method="grid", backend=backend)
        assert builds["n"] == len(cfg.sample_times())
        assert squeezed.unique_pairs() == reference.unique_pairs()
        assert squeezed.n_conjunctions == reference.n_conjunctions

    @pytest.mark.parametrize("backend", ["serial", "threads", "vectorized"])
    def test_all_backends_agree_through_regrow_cycle(self, monkeypatch, backend):
        """Regression: with a tiny initial conjunction map every backend
        must deliver the same deduplicated record set and conjunctions
        through at least one regrow cycle.  The population is dense enough
        that overflows strike *mid-step*, leaving partial CAS records that
        the regrow copies and the replay then re-offers — the seed code
        duplicated exactly those records."""
        import repro.detection.gridbased as gb

        # Doubling the population gives every object a coincident twin, so
        # every step emits many candidate pairs and the capacity-2 map is
        # guaranteed to overflow with a step half-inserted.
        base = generate_population(12, seed=4)
        pop = OrbitalElementsArray.concatenate([base, base])
        cfg = ScreeningConfig(threshold_km=5.0, duration_s=60.0, seconds_per_sample=2.0)
        reference = screen(pop, cfg, method="grid", backend="serial")
        ref_records = reference.candidates_refined
        assert ref_records > 0  # the scenario must actually produce records

        monkeypatch.setattr(
            gb, "_make_conjmap", lambda n, config, variant, sps: ConjunctionMap(2)
        )
        squeezed = screen(pop, cfg, method="grid", backend=backend)
        # Identical record count proves the deduped record sets match (the
        # serial run without squeezing is the ground truth).
        assert squeezed.candidates_refined == ref_records
        assert squeezed.unique_pairs() == reference.unique_pairs()
        assert squeezed.n_conjunctions == reference.n_conjunctions


class TestCapacityExhaustion:
    def test_grid_over_capacity_raises_cleanly(self):
        grid = UniformGrid(10.0, capacity=2)
        grid.insert(0, np.zeros(3))
        grid.insert(1, np.array([500.0, 0, 0]))
        with pytest.raises(RuntimeError, match="exhausted"):
            grid.insert(2, np.array([1000.0, 0, 0]))

    def test_conjmap_overflow_error_is_actionable(self):
        cm = ConjunctionMap(2)
        cm.insert(0, 1, 0)
        cm.insert(0, 1, 1)
        with pytest.raises(HashMapFullError, match="seconds-per-sample"):
            cm.insert(0, 1, 2)


class TestHostileInputs:
    def test_population_escaping_volume_fails_at_grid(self):
        # An orbit with apogee beyond the simulation cube: propagation is
        # fine, the grid must reject it with a clear message.
        pop = OrbitalElementsArray(
            a=np.array([50000.0]), e=np.array([0.0]), i=np.array([0.1]),
            raan=np.array([0.0]), argp=np.array([0.0]), m0=np.array([0.0]),
        )
        cfg = ScreeningConfig(threshold_km=2.0, duration_s=60.0, seconds_per_sample=2.0)
        with pytest.raises(ValueError, match="simulation cube"):
            screen(pop, cfg, method="grid")

    def test_single_object_population_screens_cleanly(self):
        pop = generate_population(1, seed=0)
        cfg = ScreeningConfig(threshold_km=2.0, duration_s=120.0, seconds_per_sample=2.0)
        for method in ("grid", "hybrid", "legacy"):
            result = screen(pop, cfg, method=method)
            assert result.n_conjunctions == 0, method

    def test_duplicate_object_is_reported_not_crashed(self):
        """Two identical element sets (a cataloguing error) are permanently
        at zero distance: the screeners must flag them, not die."""
        pop = generate_population(1, seed=3)
        doubled = OrbitalElementsArray.concatenate([pop, pop])
        cfg = ScreeningConfig(threshold_km=2.0, duration_s=120.0, seconds_per_sample=2.0)
        result = screen(doubled, cfg, method="grid")
        assert (0, 1) in result.unique_pairs()


def _shm_blocks() -> "set[str]":
    """The multiprocessing shared-memory segments currently in /dev/shm."""
    try:
        return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-tmpfs platforms
        pytest.skip("no /dev/shm to audit on this platform")


class TestSharedMemoryHygiene:
    """The processes executor must leave /dev/shm exactly as it found it —
    population block, per-worker result blocks — clean run or not."""

    def test_clean_processes_run_leaves_no_blocks(self, crossing_pair):
        cfg = ScreeningConfig(threshold_km=5.0, duration_s=300.0, seconds_per_sample=2.0)
        before = _shm_blocks()
        screen_grid_multidevice(crossing_pair, cfg, 2, executor="processes")
        assert _shm_blocks() - before == set()

    def test_worker_failure_does_not_orphan_blocks(self):
        """A shard raising mid-round (hostile orbit escaping the simulation
        cube inside the spawned worker) must surface the original error in
        the parent AND unwind every shared-memory block."""
        hostile = OrbitalElementsArray(
            a=np.array([50000.0, 7000.0]), e=np.array([0.0, 0.001]),
            i=np.array([0.1, 0.9]), raan=np.array([0.0, 1.0]),
            argp=np.array([0.0, 2.0]), m0=np.array([0.0, 3.0]),
        )
        cfg = ScreeningConfig(threshold_km=2.0, duration_s=60.0, seconds_per_sample=2.0)
        before = _shm_blocks()
        with pytest.raises(ValueError, match="simulation cube"):
            screen_grid_multidevice(hostile, cfg, 2, executor="processes")
        assert _shm_blocks() - before == set()

    def test_pool_survives_a_failed_window(self, crossing_pair):
        """A persistent pool is not poisoned by one bad window: the next
        window over the same workers still merges correctly, and closing
        the pool releases every block."""
        hostile = OrbitalElementsArray(
            a=np.array([50000.0, 7000.0]), e=np.array([0.0, 0.001]),
            i=np.array([0.1, 0.9]), raan=np.array([0.0, 1.0]),
            argp=np.array([0.0, 2.0]), m0=np.array([0.0, 3.0]),
        )
        cfg = ScreeningConfig(threshold_km=5.0, duration_s=300.0, seconds_per_sample=2.0)
        reference, _ = screen_grid_multidevice(crossing_pair, cfg, 2, executor="processes")
        before = _shm_blocks()
        with PersistentShardPool(2) as pool:
            with pytest.raises(ValueError, match="simulation cube"):
                screen_grid_multidevice(
                    hostile, cfg, 2, executor="processes", pool=pool
                )
            recovered, _ = screen_grid_multidevice(
                crossing_pair, cfg, 2, executor="processes", pool=pool
            )
        np.testing.assert_array_equal(recovered.i, reference.i)
        np.testing.assert_array_equal(recovered.j, reference.j)
        np.testing.assert_array_equal(recovered.tca_s, reference.tca_s)
        np.testing.assert_array_equal(recovered.pca_km, reference.pca_km)
        assert _shm_blocks() - before == set()


class TestClosedCampaignResourceLeak:
    """run_window after ScreeningCampaign.close() used to quietly respawn
    the worker pool and heartbeat thread — resources nothing would ever
    close again.  Post-close use must be a loud error and must not touch
    /dev/shm."""

    def test_post_close_run_window_leaks_nothing(self, crossing_pair):
        import threading

        from repro.ops.campaign import ScreeningCampaign

        cfg = ScreeningConfig(
            threshold_km=5.0, duration_s=300.0, seconds_per_sample=2.0
        )
        campaign = ScreeningCampaign(
            crossing_pair, cfg, method="grid", n_devices=2,
            executor="processes", heartbeat_s=3600.0,
            heartbeat_sink=lambda line: None,
        )
        campaign.run_window()
        campaign.close()
        before_blocks = _shm_blocks()
        before_threads = threading.active_count()
        with pytest.raises(RuntimeError, match="closed"):
            campaign.run_window()
        assert campaign._pool is None
        assert campaign._heartbeat is None
        assert _shm_blocks() - before_blocks == set()
        assert threading.active_count() == before_threads

    def test_close_without_use_is_safe(self, crossing_pair):
        from repro.ops.campaign import ScreeningCampaign

        cfg = ScreeningConfig(
            threshold_km=5.0, duration_s=300.0, seconds_per_sample=2.0
        )
        campaign = ScreeningCampaign(crossing_pair, cfg, method="grid")
        campaign.close()
        campaign.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            campaign.run_window()


class TestRegrowSizing:
    """A batch far bigger than the capacity must regrow *once*, not log2 times."""

    def test_huge_incoming_batch_sizes_in_one_step(self):
        cm = ConjunctionMap(4)
        grown = _regrow(cm, incoming=1000)
        assert grown.capacity == 1024  # next_pow2(0 + 1000), not 8

    def test_doubling_floor_kept_for_small_batches(self):
        cm = ConjunctionMap(64)
        cm.insert(1, 2, 0)
        grown = _regrow(cm, incoming=3)
        assert grown.capacity == 128  # 2 * capacity dominates

    def test_records_preserved_with_incoming(self):
        cm = ConjunctionMap(8)
        cm.insert_batch(np.array([1, 3, 5]), np.array([2, 4, 6]), step=7)
        grown = _regrow(cm, incoming=500)
        i, j, s = grown.records()
        assert list(zip(i, j, s)) == [(1, 2, 7), (3, 4, 7), (5, 6, 7)]
        assert grown.capacity == 512

    def test_regrow_counts_into_metrics(self):
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        cm = ConjunctionMap(4)
        _regrow(cm, incoming=10, metrics=metrics)
        _regrow(cm, incoming=10, metrics=metrics)
        assert metrics.counter("conjmap.regrows").value == 2

    def test_fused_overflow_regrows_once(self, monkeypatch):
        """A fused vectorized round whose batch dwarfs a tiny map triggers
        exactly one overflow/regrow cycle end to end."""
        import repro.detection.gridbased as gb
        from repro.obs.metrics import MetricsRegistry

        base = generate_population(16, seed=4)
        pop = OrbitalElementsArray.concatenate([base, base])
        cfg = ScreeningConfig(threshold_km=5.0, duration_s=120.0, seconds_per_sample=2.0)
        monkeypatch.setattr(
            gb, "_make_conjmap", lambda n, config, variant, sps: ConjunctionMap(2)
        )
        metrics = MetricsRegistry()
        result = screen(pop, cfg, method="grid", backend="vectorized", metrics=metrics)
        assert result.candidates_refined > 2  # the tiny map really overflowed
        # One regrow per overflowing round (64 fused steps -> at most the
        # round count), never the log2(batch/2) doublings of the old code.
        regrows = metrics.counter("conjmap.regrows").value
        rounds = metrics.counter("cd.rounds").value
        assert 1 <= regrows <= rounds
