"""Runtime models and crossover prediction."""
from __future__ import annotations

import pytest

from repro.perfmodel.extrap import PowerLawModel
from repro.perfmodel.runtime import (
    compare_runtimes,
    crossover_population,
    fit_runtime_model,
)


def _samples(coeff, k, sizes):
    return [(n, coeff * n**k) for n in sizes]


class TestFit:
    def test_recovers_quadratic(self):
        model = fit_runtime_model(_samples(1e-6, 2.0, [1000, 2000, 4000, 8000]))
        assert model.exponents == (2.0,)
        assert model.coefficient == pytest.approx(1e-6, rel=1e-6)

    def test_recovers_linear(self):
        model = fit_runtime_model(_samples(3e-4, 1.0, [500, 1000, 5000]))
        assert model.exponents == (1.0,)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_runtime_model([(100, 1.0)])


class TestCrossover:
    def test_known_crossing(self):
        legacy = PowerLawModel(("n",), (2.0,), 1e-6)  # quadratic
        grid = PowerLawModel(("n",), (1.0,), 4e-3)  # linear, slower at small n
        n_cross = crossover_population(legacy, grid)
        # 1e-6 n^2 = 4e-3 n  ->  n = 4000.
        assert n_cross == pytest.approx(4000.0, rel=1e-9)

    def test_no_crossing_when_always_faster(self):
        a = PowerLawModel(("n",), (2.0,), 1e-6)
        b = PowerLawModel(("n",), (1.0,), 1e-12)  # cheaper everywhere (n>1)
        assert crossover_population(a, b) is None

    def test_equal_exponents(self):
        a = PowerLawModel(("n",), (1.0,), 1.0)
        b = PowerLawModel(("n",), (1.0,), 2.0)
        assert crossover_population(a, b) is None

    def test_requires_n_models(self):
        a = PowerLawModel(("n", "s"), (1.0, 1.0), 1.0)
        with pytest.raises(ValueError):
            crossover_population(a, a)


class TestComparison:
    def _comparison(self):
        sizes = [1000, 2000, 4000, 8000, 16000]
        return compare_runtimes(
            {
                "legacy": _samples(1e-6, 2.0, sizes),
                "grid": _samples(4e-3, 1.0, sizes),
                "hybrid": _samples(2e-3, 1.0, sizes),
            }
        )

    def test_winner_flips_with_n(self):
        cmp = self._comparison()
        assert cmp.winner_at(100) == "legacy"  # quadratic wins tiny n
        assert cmp.winner_at(100_000) == "hybrid"

    def test_crossover_table_sorted(self):
        cmp = self._comparison()
        rows = cmp.crossovers()
        assert rows == sorted(rows, key=lambda r: r[2])
        # legacy is overtaken by hybrid before grid (hybrid is cheaper).
        overtakers = [(a, b) for a, b, _ in rows]
        assert ("legacy", "hybrid") in overtakers
        assert ("legacy", "grid") in overtakers

    def test_fig10_shape_statement(self):
        """The paper's statement form: beyond the crossover, the proposed
        variant stays cheaper for every larger n."""
        cmp = self._comparison()
        n_cross = dict(((a, b), n) for a, b, n in cmp.crossovers())[("legacy", "grid")]
        for n in (int(n_cross * 1.5), int(n_cross * 10)):
            assert cmp.predict("grid", n) < cmp.predict("legacy", n)

    def test_validation(self):
        with pytest.raises(ValueError):
            compare_runtimes({"only": [(1, 1.0), (2, 2.0)]})
