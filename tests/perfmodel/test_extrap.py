"""Extra-P-style power-law fitting."""
from __future__ import annotations

import numpy as np
import pytest

from repro.perfmodel.extrap import (
    DEFAULT_EXPONENT_CANDIDATES,
    PowerLawModel,
    crossover_point,
    fit_power_law,
    paper_conjunction_model,
)


class TestPowerLawModel:
    def test_predict(self):
        m = PowerLawModel(("n", "t"), (2.0, 1.0), 0.5)
        assert m.predict(n=10.0, t=3.0) == pytest.approx(150.0)

    def test_missing_parameter(self):
        m = PowerLawModel(("n",), (1.0,), 1.0)
        with pytest.raises(ValueError, match="missing"):
            m.predict(t=1.0)

    def test_nonpositive_parameter(self):
        m = PowerLawModel(("n",), (1.0,), 1.0)
        with pytest.raises(ValueError):
            m.predict(n=0.0)

    def test_paper_models_eq3_eq4(self):
        grid = paper_conjunction_model("grid")
        assert grid.coefficient == pytest.approx(2.32e-9)
        assert grid.exponents == (2.0, 4.0 / 3.0, 1.0, 7.0 / 4.0)
        hybrid = paper_conjunction_model("hybrid")
        assert hybrid.coefficient == pytest.approx(2.14e-9)
        assert hybrid.exponents == (2.0, 5.0 / 3.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            paper_conjunction_model("legacy")

    def test_paper_model_magnitude(self):
        # 64k satellites, 9 s sampling, 1 hour, 2 km threshold: order
        # 10^5..10^6 conjunction records (the Section V-D regime).
        c = paper_conjunction_model("grid").predict(n=64000.0, s=9.0, t=3600.0, d=2.0)
        assert 1e5 < c < 1e7


class TestFit:
    def test_recovers_exact_power_law(self, rng):
        true = PowerLawModel(("n", "s"), (2.0, 4.0 / 3.0), 3.0e-5)
        obs = []
        for _ in range(20):
            n = float(rng.uniform(100, 10000))
            s = float(rng.uniform(1, 20))
            obs.append(({"n": n, "s": s}, true.predict(n=n, s=s)))
        fitted = fit_power_law(["n", "s"], obs)
        assert fitted.exponents == (2.0, 4.0 / 3.0)
        assert fitted.coefficient == pytest.approx(3.0e-5, rel=1e-6)
        assert fitted.residual < 1e-12

    def test_robust_to_noise(self, rng):
        true = PowerLawModel(("n",), (2.0,), 1e-3)
        obs = []
        for _ in range(40):
            n = float(rng.uniform(100, 100000))
            noisy = true.predict(n=n) * float(rng.lognormal(0.0, 0.05))
            obs.append(({"n": n}, noisy))
        fitted = fit_power_law(["n"], obs)
        assert fitted.exponents == (2.0,)
        assert fitted.coefficient == pytest.approx(1e-3, rel=0.1)

    def test_constant_parameter_pinned_to_zero(self, rng):
        obs = [({"n": float(n), "d": 2.0}, float(n) ** 2) for n in (10, 30, 100, 300)]
        fitted = fit_power_law(["n", "d"], obs)
        assert fitted.exponents[1] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="two observations"):
            fit_power_law(["n"], [({"n": 1.0}, 1.0)])
        with pytest.raises(ValueError, match="positive"):
            fit_power_law(["n"], [({"n": 1.0}, 0.0), ({"n": 2.0}, 1.0)])
        with pytest.raises(ValueError, match="missing parameter"):
            fit_power_law(["n"], [({}, 1.0), ({"n": 2.0}, 1.0)])

    def test_candidates_contain_paper_exponents(self):
        for exp in (2.0, 4.0 / 3.0, 5.0 / 3.0, 1.0, 7.0 / 4.0):
            assert exp in DEFAULT_EXPONENT_CANDIDATES


class TestCrossoverPoint:
    """Where a fixed-overhead parallel model starts beating a steeper
    single-device model — the scaling benchmark's headline number."""

    def test_analytic_crossing_found(self):
        # 2n vs 0.1 n^1.5 cross at n = 400.
        single = PowerLawModel(("n",), (1.5,), 0.1)
        pooled = PowerLawModel(("n",), (1.0,), 2.0)
        x = crossover_point(pooled, single, "n", 10.0, 1e6)
        assert x == pytest.approx(400.0, rel=1e-3)

    def test_already_winning_returns_lo(self):
        cheap = PowerLawModel(("n",), (1.0,), 1.0)
        dear = PowerLawModel(("n",), (1.0,), 2.0)
        assert crossover_point(cheap, dear, "n", 100.0, 1e6) == 100.0

    def test_never_winning_returns_none(self):
        dear = PowerLawModel(("n",), (2.0,), 2.0)
        cheap = PowerLawModel(("n",), (1.0,), 1.0)
        assert crossover_point(dear, cheap, "n", 10.0, 100.0) is None

    def test_fixed_parameters_are_pinned(self):
        # With s pinned to 4, a = 4n and b = 0.04 n^1.5 cross at n = 10^4.
        a = PowerLawModel(("n", "s"), (1.0, 1.0), 1.0)
        b = PowerLawModel(("n", "s"), (1.5, 1.0), 0.01)
        x = crossover_point(a, b, "n", 10.0, 1e8, fixed={"s": 4.0})
        assert x == pytest.approx(1e4, rel=1e-3)

    def test_validation(self):
        m = PowerLawModel(("n",), (1.0,), 1.0)
        with pytest.raises(ValueError, match="lo"):
            crossover_point(m, m, "n", 0.0, 10.0)
        with pytest.raises(ValueError, match="lo"):
            crossover_point(m, m, "n", 100.0, 10.0)
