"""Section V-B memory planner."""
from __future__ import annotations

import pytest

from repro.perfmodel.memory import (
    CANDIDATE_RECORD_BYTES,
    aabb_interval_count,
    aabb_tree_bytes,
    occupancy_bitmap_bytes,
    ENTRY_BYTES,
    MIN_CONJUNCTIONS,
    MIN_DEVICE_CONJUNCTIONS,
    SLOT_BYTES,
    conjunction_capacity,
    device_conjunction_capacity,
    grid_instance_bytes,
    pipeline_queue_bytes,
    plan_device_memory,
    plan_memory,
    plan_stream_rounds,
    position_step_bytes,
)
from repro.spatial.hashing import MAX_ROUND_STEPS

GB = 2**30


class TestConjunctionCapacity:
    def test_floor_applies_for_small_populations(self):
        cap = conjunction_capacity(2000, 1.0, 3600.0, 2.0, "grid")
        assert cap == MIN_CONJUNCTIONS * 4

    def test_model_dominates_for_large_populations(self):
        cap = conjunction_capacity(1_024_000, 9.0, 86400.0, 2.0, "grid")
        assert cap > MIN_CONJUNCTIONS * 4

    def test_variant_changes_capacity(self):
        big_n = 1_024_000
        grid = conjunction_capacity(big_n, 9.0, 86400.0, 2.0, "grid")
        hybrid = conjunction_capacity(big_n, 9.0, 86400.0, 2.0, "hybrid")
        assert grid != hybrid


class TestAABB4DAccounting:
    def test_interval_count_matches_knot_schedule(self):
        from repro.spatial.aabb4d import knot_schedule

        for total, k in ((2, 1), (33, 32), (721, 32), (7201, 64)):
            _, starts, _ = knot_schedule(total, k)
            assert aabb_interval_count(total, k) == len(starts)

    def test_interval_count_validation(self):
        with pytest.raises(ValueError):
            aabb_interval_count(1, 32)
        with pytest.raises(ValueError):
            aabb_interval_count(100, 0)

    def test_tree_bytes_matches_built_tree(self):
        import numpy as np

        from repro.spatial.aabb4d import AABB4DTree

        n, total, k = 50, 65, 32
        n_int = aabb_interval_count(total, k)
        rng = np.random.default_rng(0)
        boxes = n * n_int
        lo = rng.uniform(-100, 100, size=(boxes, 3))
        hi = lo + 1.0
        interval = np.repeat(np.arange(n_int), n)
        tree = AABB4DTree(lo, hi, interval)
        assert aabb_tree_bytes(n, total, k) == tree.memory_bytes

    def test_bitmap_bytes_matches_built_bitmap(self):
        import numpy as np

        from repro.filters.occupancy import OccupancyBitmap

        n, total, k = 40, 33, 16
        n_int = aabb_interval_count(total, k)
        boxes = n * n_int
        rng = np.random.default_rng(1)
        lo = rng.uniform(-100, 100, size=(boxes, 3))
        hi = lo + 1.0
        interval = np.repeat(np.arange(n_int), n)
        bitmap = OccupancyBitmap(lo, hi, interval, n_int, shell_km=50.0)
        assert occupancy_bitmap_bytes(n, total, k, 50.0) == bitmap.memory_bytes

    def test_capacity_mirrors_grid(self):
        args = (1_024_000, 9.0, 86400.0, 2.0)
        assert conjunction_capacity(*args, "aabb4d") == conjunction_capacity(*args, "grid")

    def test_plan_charges_tree_and_bitmap(self):
        n = 64000
        grid = plan_memory(n, 9.0, 3600.0, 2.0, "grid", budget_bytes=24 * GB, auto_adjust=False)
        aabb = plan_memory(n, 9.0, 3600.0, 2.0, "aabb4d", budget_bytes=24 * GB, auto_adjust=False)
        assert grid.tree_bytes == 0 and grid.bitmap_bytes == 0
        total = int(3600.0 / 9.0) + 1
        assert aabb.tree_bytes == aabb_tree_bytes(n, total, 32)
        assert aabb.bitmap_bytes == occupancy_bitmap_bytes(n, total, 32)
        assert aabb.fixed_bytes == grid.fixed_bytes + aabb.tree_bytes + aabb.bitmap_bytes

    def test_plan_respects_knobs(self):
        n = 64000
        fine = plan_memory(n, 9.0, 3600.0, 2.0, "aabb4d", budget_bytes=24 * GB,
                           auto_adjust=False, knot_steps=8)
        coarse = plan_memory(n, 9.0, 3600.0, 2.0, "aabb4d", budget_bytes=24 * GB,
                             auto_adjust=False, knot_steps=128)
        assert fine.tree_bytes > coarse.tree_bytes
        thin = plan_memory(n, 9.0, 3600.0, 2.0, "aabb4d", budget_bytes=24 * GB,
                           auto_adjust=False, occupancy_shell_km=10.0)
        assert thin.bitmap_bytes > fine.bitmap_bytes or thin.bitmap_bytes > coarse.bitmap_bytes

    def test_stream_rounds_feel_the_tree(self):
        # The tree+bitmap eat free space, so the aabb4d stream plan never
        # gets a wider round than the grid plan on the same budget.
        grid = plan_stream_rounds(
            200_000, 1.0, 7200.0, 2.0, "grid", 256 * 2**20, 4, 1801
        )
        aabb = plan_stream_rounds(
            200_000, 1.0, 7200.0, 2.0, "aabb4d", 256 * 2**20, 4, 1801
        )
        assert aabb.round_size <= grid.round_size
        assert aabb.plan.tree_bytes > 0 and aabb.plan.bitmap_bytes > 0


class TestPlan:
    def test_plan_accounts_match_formulas(self):
        n = 64000
        plan = plan_memory(n, 9.0, 3600.0, 2.0, "grid", budget_bytes=24 * GB, auto_adjust=False)
        assert plan.grid_hash_bytes == 2 * n * SLOT_BYTES
        assert plan.entry_pool_bytes == n * ENTRY_BYTES
        free = plan.budget_bytes - plan.fixed_bytes
        assert plan.parallel_steps == free // plan.per_grid_bytes
        assert plan.total_samples == int(3600.0 / 9.0) + 1
        assert plan.computation_rounds >= 1
        assert plan.total_bytes <= plan.budget_bytes

    def test_rounds_cover_all_samples(self):
        plan = plan_memory(10000, 1.0, 7200.0, 2.0, "grid", budget_bytes=1 * GB, auto_adjust=False)
        assert plan.computation_rounds * plan.parallel_steps >= plan.total_samples

    def test_auto_adjust_reduces_sps_when_memory_tight(self):
        """The 512k/1M-satellite regime of Section V-C: a tight budget
        forces the planner to shrink seconds-per-sample from 9 toward 1."""
        n = 1_024_000
        plan = plan_memory(n, 9.0, 86400.0, 2.0, "hybrid", budget_bytes=24 * GB)
        assert plan.was_adjusted
        assert plan.seconds_per_sample < 9.0
        assert plan.requested_seconds_per_sample == 9.0

    def test_no_adjustment_when_memory_plentiful(self):
        plan = plan_memory(2000, 9.0, 3600.0, 2.0, "hybrid", budget_bytes=64 * GB)
        assert not plan.was_adjusted
        assert plan.parallel_steps >= 401  # every sample fits at once

    def test_adjustment_targets_parallel_factor(self):
        n = 400_000
        plan = plan_memory(n, 9.0, 86400.0, 2.0, "hybrid", budget_bytes=24 * GB)
        # Either the target factor is reached or sps bottomed out at 1.
        assert plan.parallel_steps >= 512 or plan.seconds_per_sample == 1.0

    def test_impossible_budget_raises(self):
        with pytest.raises(ValueError, match="cannot hold even one grid"):
            plan_memory(1_000_000, 9.0, 3600.0, 2.0, "grid", budget_bytes=10**6)

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_memory(0, 9.0, 3600.0, 2.0, "grid", budget_bytes=GB)
        with pytest.raises(ValueError):
            plan_memory(100, 9.0, 3600.0, 2.0, "grid", budget_bytes=0)

    def test_memory_ordering_grid_cheaper_than_hybrid(self):
        """The paper: 'the grid-based variant is characterized by lower
        memory consumption' — for large populations the hybrid conjunction
        map (coarser sampling -> more candidates) outweighs."""
        n = 1_024_000
        grid = plan_memory(n, 1.0, 3600.0, 2.0, "grid", budget_bytes=384 * GB, auto_adjust=False)
        hybrid = plan_memory(n, 9.0, 3600.0, 2.0, "hybrid", budget_bytes=384 * GB, auto_adjust=False)
        assert grid.conjunction_map_bytes < hybrid.conjunction_map_bytes


class TestGridInstanceBytes:
    def test_matches_plan_per_grid_cost(self):
        """One source of truth: the helper equals the plan's per-grid
        accounting, so multidevice peak bytes can't drift from Section V-B."""
        n = 64000
        plan = plan_memory(n, 9.0, 3600.0, 2.0, "grid", budget_bytes=24 * GB, auto_adjust=False)
        assert grid_instance_bytes(n) == plan.per_grid_bytes
        assert grid_instance_bytes(n) == 2 * n * SLOT_BYTES + n * ENTRY_BYTES


class TestDeviceCapacity:
    def test_divides_full_capacity(self):
        full = conjunction_capacity(1_024_000, 9.0, 86400.0, 2.0, "grid")
        per_device = device_conjunction_capacity(1_024_000, 9.0, 86400.0, 2.0, "grid", 4)
        assert per_device == full // 4

    def test_floor_protects_starved_shards(self):
        cap = device_conjunction_capacity(2000, 1.0, 3600.0, 2.0, "grid", 10**6)
        assert cap == MIN_DEVICE_CONJUNCTIONS

    def test_validation(self):
        with pytest.raises(ValueError):
            device_conjunction_capacity(2000, 1.0, 3600.0, 2.0, "grid", 0)


class TestDevicePlan:
    def test_reflects_the_actual_shard(self):
        """total_samples is the device's round-robin shard length, not a
        duration re-derivation; the map gets the runtime's per-device slots."""
        plan = plan_device_memory(
            64000, 9.0, 3600.0, 2.0, "grid", budget_bytes=24 * GB,
            n_devices=3, device_steps=134,
        )
        assert plan.total_samples == 134
        assert plan.conjunction_map_slots == device_conjunction_capacity(
            64000, 9.0, 3600.0, 2.0, "grid", 3
        )
        assert plan.computation_rounds * plan.parallel_steps >= 134
        assert plan.total_bytes <= plan.budget_bytes

    def test_smaller_map_than_full_run_plan(self):
        full = plan_memory(1_024_000, 9.0, 3600.0, 2.0, "grid",
                           budget_bytes=384 * GB, auto_adjust=False)
        device = plan_device_memory(
            1_024_000, 9.0, 3600.0, 2.0, "grid", budget_bytes=384 * GB,
            n_devices=4, device_steps=full.total_samples // 4,
        )
        assert device.conjunction_map_bytes < full.conjunction_map_bytes
        assert device.per_grid_bytes == full.per_grid_bytes

    def test_impossible_budget_raises(self):
        with pytest.raises(ValueError, match="cannot hold even one grid"):
            plan_device_memory(
                1_000_000, 9.0, 3600.0, 2.0, "grid", budget_bytes=10**6,
                n_devices=2, device_steps=100,
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_device_memory(0, 9.0, 3600.0, 2.0, "grid", budget_bytes=GB,
                               n_devices=2, device_steps=10)
        with pytest.raises(ValueError):
            plan_device_memory(100, 9.0, 3600.0, 2.0, "grid", budget_bytes=0,
                               n_devices=2, device_steps=10)
        with pytest.raises(ValueError):
            plan_device_memory(100, 9.0, 3600.0, 2.0, "grid", budget_bytes=GB,
                               n_devices=2, device_steps=-1)
        with pytest.raises(ValueError):
            plan_device_memory(100, 9.0, 3600.0, 2.0, "grid", budget_bytes=GB,
                               n_devices=0, device_steps=10)


class TestPositionStepBytes:
    def test_fp64_is_three_doubles_per_satellite(self):
        assert position_step_bytes(1000) == 24_000

    def test_mixed_halves_the_block(self):
        assert position_step_bytes(1000, precision="mixed") == 12_000


class TestStreamPlan:
    def test_roomy_budget_grants_the_requested_round(self):
        sp = plan_stream_rounds(
            64000, 9.0, 3600.0, 2.0, "grid", budget_bytes=24 * GB,
            n_devices=2, device_steps=200, requested_round_size=16,
        )
        assert sp.round_size == 16
        assert not sp.streamed
        assert sp.rounds == 13  # ceil(200 / 16)
        assert sp.buffer_bytes == 2 * 16 * position_step_bytes(64000)
        assert sp.total_bytes <= 24 * GB

    def test_tight_budget_narrows_the_round_instead_of_raising(self):
        """The budget that makes plan_device_memory raise ('cannot hold
        even one grid') must stream at round_size=1 here."""
        with pytest.raises(ValueError, match="cannot hold even one grid"):
            plan_device_memory(
                1_000_000, 9.0, 3600.0, 2.0, "grid", budget_bytes=10**6,
                n_devices=2, device_steps=100,
            )
        sp = plan_stream_rounds(
            1_000_000, 9.0, 3600.0, 2.0, "grid", budget_bytes=10**6,
            n_devices=2, device_steps=100,
        )
        assert sp.round_size == 1
        assert sp.streamed
        assert sp.rounds == 100

    def test_paper_scale_fits_half_gig_device(self):
        """The 1M-object check-only tier: 4 devices x 512 MB, two steps per
        shard — the plan must fit the budget it was given."""
        budget = 512 * 2**20
        sp = plan_stream_rounds(
            1_024_000, 2.0, 12.0, 5.0, "grid", budget_bytes=budget,
            n_devices=4, device_steps=2,
        )
        assert 1 <= sp.round_size <= 2
        assert sp.total_bytes <= budget

    def test_round_never_exceeds_the_shard(self):
        sp = plan_stream_rounds(
            1000, 2.0, 600.0, 5.0, "grid", budget_bytes=24 * GB,
            n_devices=4, device_steps=3,
        )
        assert sp.round_size == 3  # shard-bounded, not budget-bounded
        assert not sp.streamed

    def test_round_capped_at_max_round_steps(self):
        sp = plan_stream_rounds(
            100, 2.0, 600.0, 5.0, "grid", budget_bytes=1024 * GB,
            n_devices=1, device_steps=10 * MAX_ROUND_STEPS,
        )
        assert sp.round_size <= MAX_ROUND_STEPS

    def test_underlying_plan_matches_plan_device_memory(self):
        """plan_stream_rounds wraps the same arithmetic as
        plan_device_memory when the budget is viable."""
        kw = dict(budget_bytes=24 * GB, n_devices=3, device_steps=134)
        sp = plan_stream_rounds(64000, 9.0, 3600.0, 2.0, "grid", **kw)
        plan = plan_device_memory(64000, 9.0, 3600.0, 2.0, "grid", **kw)
        assert sp.plan == plan

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_stream_rounds(0, 9.0, 3600.0, 2.0, "grid", budget_bytes=GB,
                               n_devices=2, device_steps=10)
        with pytest.raises(ValueError):
            plan_stream_rounds(100, 9.0, 3600.0, 2.0, "grid", budget_bytes=0,
                               n_devices=2, device_steps=10)
        with pytest.raises(ValueError):
            plan_stream_rounds(100, 9.0, 3600.0, 2.0, "grid", budget_bytes=GB,
                               n_devices=2, device_steps=-1)
        with pytest.raises(ValueError, match="requested_round_size"):
            plan_stream_rounds(100, 9.0, 3600.0, 2.0, "grid", budget_bytes=GB,
                               n_devices=2, device_steps=10,
                               requested_round_size=0)


class TestPipelineQueueBytes:
    def test_prorates_capacity_by_round_share(self):
        import math

        capacity = conjunction_capacity(64000, 9.0, 3600.0, 2.0, "grid")
        o = max(int(math.ceil(3600.0 / 9.0)) + 1, 2)
        per_round = int(math.ceil(capacity * min(16, o) / o))
        assert pipeline_queue_bytes(64000, 9.0, 3600.0, 2.0, "grid", 16, 2) == (
            2 * per_round * CANDIDATE_RECORD_BYTES
        )

    def test_scales_linearly_in_queue_depth(self):
        one = pipeline_queue_bytes(64000, 9.0, 3600.0, 2.0, "grid", 16, 1)
        three = pipeline_queue_bytes(64000, 9.0, 3600.0, 2.0, "grid", 16, 3)
        assert three == 3 * one

    def test_round_wider_than_window_caps_at_full_capacity(self):
        capacity = conjunction_capacity(1000, 2.0, 60.0, 5.0, "grid")
        full = pipeline_queue_bytes(1000, 2.0, 60.0, 5.0, "grid", 10**6, 1)
        assert full == capacity * CANDIDATE_RECORD_BYTES

    def test_validation(self):
        with pytest.raises(ValueError, match="round_size"):
            pipeline_queue_bytes(1000, 2.0, 60.0, 5.0, "grid", 0, 2)
        with pytest.raises(ValueError, match="queue_rounds"):
            pipeline_queue_bytes(1000, 2.0, 60.0, 5.0, "grid", 16, 0)


class TestStreamPlanQueueCharge:
    def test_queue_bytes_counted_in_total(self):
        kw = dict(budget_bytes=24 * GB, n_devices=2, device_steps=200,
                  requested_round_size=16)
        barrier = plan_stream_rounds(64000, 9.0, 3600.0, 2.0, "grid", **kw)
        piped = plan_stream_rounds(64000, 9.0, 3600.0, 2.0, "grid",
                                   queue_rounds=2, **kw)
        assert barrier.queue_bytes == 0
        assert piped.queue_bytes == pipeline_queue_bytes(
            64000, 9.0, 3600.0, 2.0, "grid", piped.round_size, 2
        )
        assert piped.total_bytes == barrier.total_bytes + piped.queue_bytes

    def test_tight_budget_refits_round_width_for_the_queue(self):
        """With the queue charged against free space, the pipelined plan
        must not claim a wider round than actually fits alongside it."""
        base = plan_stream_rounds(
            200_000, 2.0, 3600.0, 2.0, "grid", budget_bytes=2 * GB,
            n_devices=2, device_steps=900,
        )
        piped = plan_stream_rounds(
            200_000, 2.0, 3600.0, 2.0, "grid", budget_bytes=2 * GB,
            n_devices=2, device_steps=900, queue_rounds=4,
        )
        assert piped.round_size <= base.round_size
        assert piped.total_bytes <= 2 * GB

    def test_queue_floor_never_starves_the_round(self):
        sp = plan_stream_rounds(
            1_000_000, 9.0, 3600.0, 2.0, "grid", budget_bytes=10**6,
            n_devices=2, device_steps=100, queue_rounds=2,
        )
        assert sp.round_size == 1  # still degrades, never raises
