"""Brute-force oracle vs every screening variant."""
from __future__ import annotations

import numpy as np
import pytest

from repro.detection.api import screen
from repro.detection.types import ScreeningConfig
from repro.population.generator import generate_population
from repro.validation import brute_force_screen

CFG = ScreeningConfig(threshold_km=5.0, duration_s=6000.0, seconds_per_sample=1.0)


def test_oracle_finds_engineered_conjunctions(crossing_pair):
    ref = brute_force_screen(crossing_pair, CFG)
    assert ref.n_conjunctions == 2
    conjs = ref.conjunctions()
    assert conjs[0].pca_km == pytest.approx(1.22, abs=0.01)
    assert conjs[1].tca_s == pytest.approx(2914.5, abs=1.0)


@pytest.mark.parametrize("method", ["grid", "hybrid", "legacy", "kdtree"])
def test_variants_match_oracle_on_population(method):
    pop = generate_population(250, seed=77)
    cfg = ScreeningConfig(threshold_km=10.0, duration_s=900.0, seconds_per_sample=2.0)
    oracle = brute_force_screen(pop, cfg, oversample=4)
    got = screen(pop, cfg, method=method)
    assert got.unique_pairs() == oracle.unique_pairs(), method
    # PCA values match per pair to refinement accuracy.
    oracle_best = {}
    for c in oracle.conjunctions():
        key = (c.i, c.j)
        oracle_best[key] = min(oracle_best.get(key, np.inf), c.pca_km)
    for c in got.conjunctions():
        assert c.pca_km == pytest.approx(oracle_best[(c.i, c.j)], abs=1e-3)


def test_oracle_validation():
    pop = generate_population(10, seed=1)
    with pytest.raises(ValueError):
        brute_force_screen(pop, CFG, oversample=0)
