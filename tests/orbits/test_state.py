"""State-vector <-> element conversions (rv2coe / coe2rv)."""
from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import MU_EARTH
from repro.orbits.elements import KeplerElements, OrbitalElementsArray
from repro.orbits.kepler import mean_to_true
from repro.orbits.propagation import Propagator
from repro.orbits.state import elements_to_state, state_to_elements


def test_elements_to_state_matches_propagator():
    el = KeplerElements(a=8000.0, e=0.1, i=0.7, raan=1.1, argp=2.2, m0=0.6)
    nu = float(mean_to_true(el.m0, el.e))
    pos, vel = elements_to_state(el, nu)
    pop = OrbitalElementsArray.from_elements([el])
    prop = Propagator(pop)
    np.testing.assert_allclose(pos, prop.positions(0.0)[0], atol=1e-8)
    np.testing.assert_allclose(vel, prop.velocities(0.0)[0], atol=1e-10)


def test_round_trip_general_orbit():
    el = KeplerElements(a=9500.0, e=0.25, i=1.0, raan=2.5, argp=4.0, m0=1.5)
    nu = float(mean_to_true(el.m0, el.e))
    pos, vel = elements_to_state(el, nu)
    back, nu_back = state_to_elements(pos, vel)
    assert back.a == pytest.approx(el.a, rel=1e-10)
    assert back.e == pytest.approx(el.e, abs=1e-10)
    assert back.i == pytest.approx(el.i, abs=1e-10)
    assert back.raan == pytest.approx(el.raan, abs=1e-10)
    assert back.argp == pytest.approx(el.argp, abs=1e-9)
    assert nu_back == pytest.approx(nu, abs=1e-9)


@settings(max_examples=150, deadline=None)
@given(
    a=st.floats(min_value=6800.0, max_value=42000.0),
    e=st.floats(min_value=0.0, max_value=0.7),
    i=st.floats(min_value=0.01, max_value=math.pi - 0.01),
    raan=st.floats(min_value=0.0, max_value=2 * math.pi - 1e-6),
    argp=st.floats(min_value=0.0, max_value=2 * math.pi - 1e-6),
    nu=st.floats(min_value=0.0, max_value=2 * math.pi - 1e-6),
)
def test_round_trip_position_property(a, e, i, raan, argp, nu):
    """coe2rv followed by rv2coe reproduces the same physical state."""
    el = KeplerElements(a=a, e=e, i=i, raan=raan, argp=argp, m0=0.0)
    pos, vel = elements_to_state(el, nu)
    back, nu_back = state_to_elements(pos, vel)
    pos2, vel2 = elements_to_state(back, nu_back)
    np.testing.assert_allclose(pos2, pos, rtol=1e-7, atol=1e-6)
    np.testing.assert_allclose(vel2, vel, rtol=1e-7, atol=1e-9)


def test_circular_equatorial_special_case():
    r = 7000.0
    v = math.sqrt(MU_EARTH / r)
    el, nu = state_to_elements(np.array([r, 0.0, 0.0]), np.array([0.0, v, 0.0]))
    assert el.a == pytest.approx(r, rel=1e-12)
    assert el.e == pytest.approx(0.0, abs=1e-12)
    assert el.i == pytest.approx(0.0, abs=1e-12)
    assert nu == pytest.approx(0.0, abs=1e-9)


def test_circular_inclined_special_case():
    r = 7000.0
    v = math.sqrt(MU_EARTH / r)
    # Start at the ascending node of a 45-degree inclined circular orbit.
    incl = math.radians(45)
    vel = np.array([0.0, v * math.cos(incl), v * math.sin(incl)])
    el, nu = state_to_elements(np.array([r, 0.0, 0.0]), vel)
    assert el.e == pytest.approx(0.0, abs=1e-12)
    assert el.i == pytest.approx(incl, abs=1e-12)
    assert nu == pytest.approx(0.0, abs=1e-9)  # measured from the node


def test_hyperbolic_state_rejected():
    r = 7000.0
    v_escape = math.sqrt(2 * MU_EARTH / r)
    with pytest.raises(ValueError, match="not elliptic"):
        state_to_elements(np.array([r, 0, 0]), np.array([0, v_escape * 1.01, 0]))


def test_rectilinear_state_rejected():
    with pytest.raises(ValueError, match="rectilinear"):
        state_to_elements(np.array([7000.0, 0, 0]), np.array([1.0, 0, 0]))


def test_zero_position_rejected():
    with pytest.raises(ValueError):
        state_to_elements(np.zeros(3), np.array([1.0, 0, 0]))
