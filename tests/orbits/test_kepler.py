"""Kepler-equation solvers: accuracy, inverse property, cross-validation."""
from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import TWO_PI
from repro.orbits.kepler import (
    SOLVERS,
    eccentric_to_mean,
    eccentric_to_true,
    mean_to_eccentric,
    mean_to_true,
    solve_kepler_bisect,
    solve_kepler_contour,
    solve_kepler_halley,
    solve_kepler_newton,
    true_to_eccentric,
    true_to_mean,
)

ALL_SOLVERS = [solve_kepler_newton, solve_kepler_halley, solve_kepler_bisect, solve_kepler_contour]


@pytest.mark.parametrize("solver", ALL_SOLVERS)
def test_residual_is_tiny_across_grid(solver):
    m = np.linspace(0.0, TWO_PI, 257)
    for e in (0.0, 0.001, 0.1, 0.5, 0.8):
        E = solver(m, e)
        residual = E - e * np.sin(E) - np.mod(m, TWO_PI)
        # Wrap residual to (-pi, pi] to ignore full-turn offsets.
        residual = (residual + math.pi) % TWO_PI - math.pi
        assert np.abs(residual).max() < 1e-9, f"e={e}"


@pytest.mark.parametrize("solver", ALL_SOLVERS)
def test_scalar_input_gives_scalar_output(solver):
    out = solver(1.234, 0.3)
    assert isinstance(out, float)
    assert abs(out - 0.3 * math.sin(out) - 1.234) < 1e-9


def test_circular_orbit_is_identity():
    m = np.linspace(0, TWO_PI, 50, endpoint=False)
    for solver in ALL_SOLVERS:
        np.testing.assert_allclose(solver(m, 0.0), m, atol=1e-9)


def test_half_turn_is_exact():
    # At M = pi, E = pi exactly for every eccentricity.
    for solver in ALL_SOLVERS:
        assert abs(solver(math.pi, 0.7) - math.pi) < 1e-9


def test_solvers_agree_pairwise():
    m = np.linspace(0.01, TWO_PI - 0.01, 101)
    for e in (0.05, 0.4, 0.75):
        results = [solver(m, e) for solver in ALL_SOLVERS]
        for other in results[1:]:
            np.testing.assert_allclose(results[0], other, atol=1e-8)


def test_array_eccentricity_broadcast():
    m = np.array([0.5, 1.0, 2.0, 4.0])
    e = np.array([0.1, 0.3, 0.6, 0.05])
    E = solve_kepler_newton(m, e)
    residual = E - e * np.sin(E) - m
    assert np.abs(residual).max() < 1e-10


def test_invalid_eccentricity_raises():
    for bad in (-0.1, 1.0, 1.5):
        with pytest.raises(ValueError):
            solve_kepler_newton(1.0, bad)


def test_contour_requires_enough_points():
    with pytest.raises(ValueError):
        solve_kepler_contour(1.0, 0.5, n_points=4)


def test_unknown_solver_name_rejected():
    with pytest.raises(ValueError, match="unknown Kepler solver"):
        mean_to_eccentric(1.0, 0.1, solver="cordic")


def test_solver_registry_contains_all():
    assert set(SOLVERS) == {"newton", "halley", "bisect", "contour"}


@settings(max_examples=200, deadline=None)
@given(
    m=st.floats(min_value=0.0, max_value=TWO_PI, exclude_max=True),
    e=st.floats(min_value=0.0, max_value=0.9),
)
def test_inverse_property_mean_eccentric(m, e):
    """M -> E -> M is the identity (Kepler's equation forward)."""
    E = solve_kepler_newton(m, e)
    m_back = eccentric_to_mean(E, e)
    assert abs((m_back - m + math.pi) % TWO_PI - math.pi) < 1e-9


@settings(max_examples=200, deadline=None)
@given(
    nu=st.floats(min_value=0.0, max_value=TWO_PI, exclude_max=True),
    e=st.floats(min_value=0.0, max_value=0.9),
)
def test_inverse_property_true_eccentric(nu, e):
    E = true_to_eccentric(nu, e)
    nu_back = eccentric_to_true(E, e)
    assert abs((nu_back - nu + math.pi) % TWO_PI - math.pi) < 1e-9


@settings(max_examples=100, deadline=None)
@given(
    m=st.floats(min_value=0.0, max_value=TWO_PI, exclude_max=True),
    e=st.floats(min_value=0.0, max_value=0.85),
)
def test_round_trip_mean_true(m, e):
    nu = mean_to_true(m, e)
    m_back = true_to_mean(nu, e)
    assert abs((m_back - m + math.pi) % TWO_PI - math.pi) < 1e-8


def test_true_anomaly_quadrants():
    # At E = pi/2 with e=0.5, nu must be in the second quadrant-ish region
    # (true anomaly leads eccentric anomaly on the outbound leg).
    nu = eccentric_to_true(math.pi / 2, 0.5)
    assert math.pi / 2 < nu < math.pi


def test_contour_matches_newton_batch():
    rng = np.random.default_rng(3)
    m = rng.uniform(0, TWO_PI, 500)
    for e in (0.01, 0.3, 0.7):
        np.testing.assert_allclose(
            solve_kepler_contour(m, e), solve_kepler_newton(m, e), atol=1e-9
        )


def test_contour_with_per_element_eccentricity():
    rng = np.random.default_rng(4)
    m = rng.uniform(0, TWO_PI, 200)
    e = rng.uniform(0.0, 0.8, 200)
    np.testing.assert_allclose(
        solve_kepler_contour(m, e), solve_kepler_newton(m, e), atol=1e-9
    )
