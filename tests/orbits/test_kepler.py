"""Kepler-equation solvers: accuracy, inverse property, cross-validation."""
from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.orbits.kepler as kepler
from repro.constants import TWO_PI
from repro.orbits.kepler import (
    SOLVERS,
    WARM_SOLVERS,
    eccentric_to_mean,
    eccentric_to_true,
    mean_to_eccentric,
    mean_to_true,
    solve_kepler_bisect,
    solve_kepler_contour,
    solve_kepler_halley,
    solve_kepler_newton,
    true_to_eccentric,
    true_to_mean,
)

ALL_SOLVERS = [solve_kepler_newton, solve_kepler_halley, solve_kepler_bisect, solve_kepler_contour]


@pytest.mark.parametrize("solver", ALL_SOLVERS)
def test_residual_is_tiny_across_grid(solver):
    m = np.linspace(0.0, TWO_PI, 257)
    for e in (0.0, 0.001, 0.1, 0.5, 0.8):
        E = solver(m, e)
        residual = E - e * np.sin(E) - np.mod(m, TWO_PI)
        # Wrap residual to (-pi, pi] to ignore full-turn offsets.
        residual = (residual + math.pi) % TWO_PI - math.pi
        assert np.abs(residual).max() < 1e-9, f"e={e}"


@pytest.mark.parametrize("solver", ALL_SOLVERS)
def test_scalar_input_gives_scalar_output(solver):
    out = solver(1.234, 0.3)
    assert isinstance(out, float)
    assert abs(out - 0.3 * math.sin(out) - 1.234) < 1e-9


def test_circular_orbit_is_identity():
    m = np.linspace(0, TWO_PI, 50, endpoint=False)
    for solver in ALL_SOLVERS:
        np.testing.assert_allclose(solver(m, 0.0), m, atol=1e-9)


def test_half_turn_is_exact():
    # At M = pi, E = pi exactly for every eccentricity.
    for solver in ALL_SOLVERS:
        assert abs(solver(math.pi, 0.7) - math.pi) < 1e-9


def test_solvers_agree_pairwise():
    m = np.linspace(0.01, TWO_PI - 0.01, 101)
    for e in (0.05, 0.4, 0.75):
        results = [solver(m, e) for solver in ALL_SOLVERS]
        for other in results[1:]:
            np.testing.assert_allclose(results[0], other, atol=1e-8)


def test_array_eccentricity_broadcast():
    m = np.array([0.5, 1.0, 2.0, 4.0])
    e = np.array([0.1, 0.3, 0.6, 0.05])
    E = solve_kepler_newton(m, e)
    residual = E - e * np.sin(E) - m
    assert np.abs(residual).max() < 1e-10


def test_invalid_eccentricity_raises():
    for bad in (-0.1, 1.0, 1.5):
        with pytest.raises(ValueError):
            solve_kepler_newton(1.0, bad)


def test_contour_requires_enough_points():
    with pytest.raises(ValueError):
        solve_kepler_contour(1.0, 0.5, n_points=4)


def test_unknown_solver_name_rejected():
    with pytest.raises(ValueError, match="unknown Kepler solver"):
        mean_to_eccentric(1.0, 0.1, solver="cordic")


def test_solver_registry_contains_all():
    assert set(SOLVERS) == {"newton", "halley", "bisect", "contour"}


@settings(max_examples=200, deadline=None)
@given(
    m=st.floats(min_value=0.0, max_value=TWO_PI, exclude_max=True),
    e=st.floats(min_value=0.0, max_value=0.9),
)
def test_inverse_property_mean_eccentric(m, e):
    """M -> E -> M is the identity (Kepler's equation forward)."""
    E = solve_kepler_newton(m, e)
    m_back = eccentric_to_mean(E, e)
    assert abs((m_back - m + math.pi) % TWO_PI - math.pi) < 1e-9


@settings(max_examples=200, deadline=None)
@given(
    nu=st.floats(min_value=0.0, max_value=TWO_PI, exclude_max=True),
    e=st.floats(min_value=0.0, max_value=0.9),
)
def test_inverse_property_true_eccentric(nu, e):
    E = true_to_eccentric(nu, e)
    nu_back = eccentric_to_true(E, e)
    assert abs((nu_back - nu + math.pi) % TWO_PI - math.pi) < 1e-9


@settings(max_examples=100, deadline=None)
@given(
    m=st.floats(min_value=0.0, max_value=TWO_PI, exclude_max=True),
    e=st.floats(min_value=0.0, max_value=0.85),
)
def test_round_trip_mean_true(m, e):
    nu = mean_to_true(m, e)
    m_back = true_to_mean(nu, e)
    assert abs((m_back - m + math.pi) % TWO_PI - math.pi) < 1e-8


def test_true_anomaly_quadrants():
    # At E = pi/2 with e=0.5, nu must be in the second quadrant-ish region
    # (true anomaly leads eccentric anomaly on the outbound leg).
    nu = eccentric_to_true(math.pi / 2, 0.5)
    assert math.pi / 2 < nu < math.pi


def test_contour_matches_newton_batch():
    rng = np.random.default_rng(3)
    m = rng.uniform(0, TWO_PI, 500)
    for e in (0.01, 0.3, 0.7):
        np.testing.assert_allclose(
            solve_kepler_contour(m, e), solve_kepler_newton(m, e), atol=1e-9
        )


class _KeplerTelemetry:
    """Records what the solvers report so tests can count iterations."""

    def __init__(self):
        self.lanes = 0
        self.iterations = 0

    def record_kepler(self, lanes, iterations):
        self.lanes += lanes
        self.iterations += iterations


WARM_CAPABLE = [solve_kepler_newton, solve_kepler_halley]


class TestWarmStart:
    @pytest.mark.parametrize("solver", WARM_CAPABLE)
    def test_warm_result_equals_cold(self, solver):
        rng = np.random.default_rng(11)
        m = rng.uniform(0, TWO_PI, 300)
        e = rng.uniform(0.0, 0.85, 300)
        cold = solver(m, e)
        # A realistic warm seed: the solution of a slightly earlier epoch.
        warm_seed = solver(np.mod(m - 0.01, TWO_PI), e)
        warm = solver(m, e, warm_start=warm_seed)
        np.testing.assert_allclose(warm, cold, atol=1e-9)

    @pytest.mark.parametrize("solver", WARM_CAPABLE)
    def test_warm_start_survives_mean_anomaly_wrap(self, solver):
        """E_prev near 2*pi must stay a valid seed after M wraps past 0."""
        e = 0.6
        m_prev = TWO_PI - 0.005
        e_prev = solver(m_prev, e)
        m_next = 0.005  # wrapped
        warm = solver(m_next, e, warm_start=e_prev)
        assert abs(warm - e * math.sin(warm) - m_next) < 1e-9

    def test_warm_start_reduces_newton_iterations(self):
        rng = np.random.default_rng(23)
        m = rng.uniform(0, TWO_PI, 500)
        e = np.full(500, 0.7)
        E_prev = solve_kepler_newton(np.mod(m - 1e-4, TWO_PI), e)
        cold_tele = _KeplerTelemetry()
        solve_kepler_newton(m, e, telemetry=cold_tele)
        warm_tele = _KeplerTelemetry()
        solve_kepler_newton(m, e, warm_start=E_prev, telemetry=warm_tele)
        assert warm_tele.iterations < cold_tele.iterations

    @pytest.mark.parametrize("solver", WARM_CAPABLE)
    def test_garbage_warm_start_still_converges(self, solver):
        """The sine bounds any seed into [M - e, M + e]: never diverges."""
        m = np.linspace(0.1, TWO_PI - 0.1, 64)
        for bad_seed in (1e6, -273.15, 0.0):
            E = solver(m, 0.8, warm_start=np.full(64, bad_seed))
            residual = np.abs(E - 0.8 * np.sin(E) - m)
            assert residual.max() < 1e-9

    def test_mean_to_eccentric_forwards_warm_start(self):
        m, e = 2.0, 0.5
        seed = solve_kepler_newton(1.99, e)
        for name in WARM_SOLVERS:
            out = mean_to_eccentric(m, e, solver=name, warm_start=seed)
            assert abs(out - e * math.sin(out) - m) < 1e-9
        # Non-iterative solvers simply ignore the keyword.
        out = mean_to_eccentric(m, e, solver="bisect", warm_start=seed)
        assert abs(out - e * math.sin(out) - m) < 1e-9

    def test_telemetry_counts_lanes(self):
        tele = _KeplerTelemetry()
        solve_kepler_newton(np.linspace(0.1, 6.0, 40), 0.3, telemetry=tele)
        assert tele.lanes == 40
        assert tele.iterations >= 40  # at least one pass over every lane


class TestStaleConvergedMaskRegression:
    """The in-loop ``converged`` mask is one update stale when the cap is
    hit; the residual must be rechecked before the bisection fallback, or
    lanes that converged on the very last iteration get re-solved."""

    @staticmethod
    def _iterations_to_converge(solver, m, e):
        tele = _KeplerTelemetry()
        solver(np.atleast_1d(m), np.atleast_1d(e), telemetry=tele)
        return tele.iterations // 1  # scalar lane: iterations == loop count

    @pytest.mark.parametrize("solver", WARM_CAPABLE)
    def test_no_bisect_when_cap_equals_last_converging_update(
        self, solver, monkeypatch
    ):
        m, e = 1.0, 0.5
        k = self._iterations_to_converge(solver, m, e)
        assert k > 2, "scenario must need several iterations"
        # With the cap one below the in-loop detection count, the final
        # update still happens — the solver just never *observes* the
        # convergence inside the loop.  The post-loop recheck must.
        monkeypatch.setattr(kepler, "MAX_ITER", k - 1)

        def _bisect_must_not_run(*args, **kwargs):
            raise AssertionError("bisection fallback ran on a stale mask")

        monkeypatch.setattr(kepler, "solve_kepler_bisect", _bisect_must_not_run)
        E = solver(m, e)
        assert abs(E - e * math.sin(E) - m) < 1e-9

    @pytest.mark.parametrize("solver", WARM_CAPABLE)
    def test_truly_unconverged_lanes_still_fall_back(self, solver, monkeypatch):
        monkeypatch.setattr(kepler, "MAX_ITER", 1)
        calls = []
        real_bisect = solve_kepler_bisect

        def _spy(m, e, tol=kepler.TOL):
            calls.append(len(np.atleast_1d(m)))
            return real_bisect(m, e, tol=tol)

        monkeypatch.setattr(kepler, "solve_kepler_bisect", _spy)
        E = solver(2.0, 0.95)  # high eccentricity: one iteration is not enough
        assert calls, "the guaranteed fallback must engage"
        assert abs(E - 0.95 * math.sin(E) - 2.0) < 1e-9


def test_contour_with_per_element_eccentricity():
    rng = np.random.default_rng(4)
    m = rng.uniform(0, TWO_PI, 200)
    e = rng.uniform(0.0, 0.8, 200)
    np.testing.assert_allclose(
        solve_kepler_contour(m, e), solve_kepler_newton(m, e), atol=1e-9
    )
