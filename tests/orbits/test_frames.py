"""Perifocal->ECI rotations and orbit-plane normals."""
from __future__ import annotations

import math

import numpy as np
import pytest

from repro.orbits.frames import orbit_normal, perifocal_to_eci_matrix


class TestRotationMatrix:
    def test_identity_for_zero_angles(self):
        np.testing.assert_allclose(perifocal_to_eci_matrix(0.0, 0.0, 0.0), np.eye(3), atol=1e-15)

    def test_orthonormal(self, rng):
        for _ in range(20):
            i, raan, argp = rng.uniform(0, math.pi), rng.uniform(0, 2 * math.pi), rng.uniform(0, 2 * math.pi)
            rot = perifocal_to_eci_matrix(i, raan, argp)
            np.testing.assert_allclose(rot @ rot.T, np.eye(3), atol=1e-12)
            assert np.linalg.det(rot) == pytest.approx(1.0)

    def test_third_column_is_orbit_normal(self, rng):
        for _ in range(10):
            i, raan, argp = rng.uniform(0, math.pi), rng.uniform(0, 2 * math.pi), rng.uniform(0, 2 * math.pi)
            rot = perifocal_to_eci_matrix(i, raan, argp)
            np.testing.assert_allclose(rot[:, 2], orbit_normal(i, raan), atol=1e-12)

    def test_batch_matches_scalar(self, rng):
        i = rng.uniform(0, math.pi, 7)
        raan = rng.uniform(0, 2 * math.pi, 7)
        argp = rng.uniform(0, 2 * math.pi, 7)
        batch = perifocal_to_eci_matrix(i, raan, argp)
        assert batch.shape == (7, 3, 3)
        for k in range(7):
            np.testing.assert_allclose(
                batch[k], perifocal_to_eci_matrix(float(i[k]), float(raan[k]), float(argp[k]))
            )

    def test_equatorial_orbit_rotates_in_xy_plane(self):
        rot = perifocal_to_eci_matrix(0.0, 0.0, math.pi / 2)
        # argp rotates P into +y for zero inclination/raan.
        np.testing.assert_allclose(rot[:, 0], [0.0, 1.0, 0.0], atol=1e-12)


class TestOrbitNormal:
    def test_equatorial_normal_is_z(self):
        np.testing.assert_allclose(orbit_normal(0.0, 1.23), [0, 0, 1], atol=1e-12)

    def test_polar_normal_in_equatorial_plane(self):
        n = orbit_normal(math.pi / 2, 0.0)
        assert n[2] == pytest.approx(0.0, abs=1e-12)
        assert np.linalg.norm(n) == pytest.approx(1.0)

    def test_retrograde_normal_points_down(self):
        assert orbit_normal(math.pi, 0.0)[2] == pytest.approx(-1.0)

    def test_batch_shape_and_unit_norm(self, rng):
        i = rng.uniform(0, math.pi, 11)
        raan = rng.uniform(0, 2 * math.pi, 11)
        normals = orbit_normal(i, raan)
        assert normals.shape == (11, 3)
        np.testing.assert_allclose(np.linalg.norm(normals, axis=1), 1.0)
