"""J2 secular propagation."""
from __future__ import annotations

import math

import numpy as np
import pytest

from repro.constants import R_EARTH
from repro.orbits.elements import KeplerElements, OrbitalElementsArray
from repro.orbits.j2 import J2Propagator, j2_secular_rates, nodal_regression_period_days
from repro.orbits.propagation import Propagator


def _pop(i_deg: float, a: float = 7000.0, e: float = 0.001) -> OrbitalElementsArray:
    return OrbitalElementsArray.from_elements(
        [KeplerElements(a=a, e=e, i=math.radians(i_deg), raan=0.3, argp=0.7, m0=0.1)]
    )


class TestSecularRates:
    def test_prograde_node_regresses(self):
        raan_dot, _, _ = j2_secular_rates(_pop(51.6))
        assert raan_dot[0] < 0.0  # westward regression for prograde orbits

    def test_retrograde_node_progresses(self):
        raan_dot, _, _ = j2_secular_rates(_pop(98.0))
        assert raan_dot[0] > 0.0  # the SSO trick

    def test_polar_orbit_node_frozen(self):
        raan_dot, _, _ = j2_secular_rates(_pop(90.0))
        assert raan_dot[0] == pytest.approx(0.0, abs=1e-15)

    def test_critical_inclination_freezes_perigee(self):
        # 5 cos^2(i) = 1 at i = 63.43 degrees.
        _, argp_dot, _ = j2_secular_rates(_pop(63.4349488))
        assert argp_dot[0] == pytest.approx(0.0, abs=1e-12)

    def test_iss_regression_rate_magnitude(self):
        """ISS-like orbit: node regresses about 5 degrees per day."""
        raan_dot, _, _ = j2_secular_rates(_pop(51.6, a=R_EARTH + 420.0, e=0.0005))
        deg_per_day = math.degrees(raan_dot[0]) * 86400.0
        assert deg_per_day == pytest.approx(-5.0, abs=0.3)

    def test_sun_synchronous_design(self):
        """A ~98-degree 700 km orbit precesses ~0.986 deg/day (sun-synch)."""
        raan_dot, _, _ = j2_secular_rates(_pop(98.19, a=R_EARTH + 700.0, e=0.001))
        deg_per_day = math.degrees(raan_dot[0]) * 86400.0
        assert deg_per_day == pytest.approx(0.986, abs=0.05)

    def test_regression_period(self):
        days = nodal_regression_period_days(_pop(51.6, a=R_EARTH + 420.0))
        assert 60 < days[0] < 90  # ~72 days for the ISS plane


class TestJ2Propagator:
    def test_matches_two_body_at_t0(self):
        pop = _pop(51.6)
        np.testing.assert_allclose(
            J2Propagator(pop).positions(0.0), Propagator(pop).positions(0.0), atol=1e-9
        )

    def test_diverges_from_two_body_over_a_day(self):
        pop = _pop(51.6)
        j2 = J2Propagator(pop).positions(86400.0)
        kepler = Propagator(pop).positions(86400.0)
        assert np.linalg.norm(j2 - kepler) > 10.0  # secular drift is visible

    def test_radius_stays_in_shell(self):
        pop = _pop(51.6, e=0.01)
        prop = J2Propagator(pop)
        for t in np.linspace(0, 2 * 86400, 30):
            r = np.linalg.norm(prop.positions(float(t)), axis=1)
            assert pop.perigee[0] - 1e-6 <= r[0] <= pop.apogee[0] + 1e-6

    def test_node_drift_direction_in_positions(self):
        """After half a nodal period the ascending node has visibly moved
        westward for a prograde orbit."""
        pop = _pop(51.6)
        prop = J2Propagator(pop)
        raan_0, _, _ = prop.elements_at(0.0)
        raan_later, _, _ = prop.elements_at(10 * 86400.0)
        drift = (raan_later[0] - raan_0[0] + math.pi) % (2 * math.pi) - math.pi
        assert drift < -0.1  # westward

    def test_speeds_match_vis_viva_shape(self):
        pop = _pop(30.0, e=0.2)
        prop = J2Propagator(pop)
        s = prop.speeds(1234.0)
        assert 3.0 < s[0] < 11.0

    def test_equatorial_orbit_m_drift_positive(self):
        # For i=0, 3cos^2(i)-1 = 2 > 0: J2 speeds up the mean motion.
        _, _, m_dot = j2_secular_rates(_pop(0.0))
        assert m_dot[0] > 0.0

    def test_memory_bytes(self):
        pop = _pop(51.6)
        assert J2Propagator(pop).memory_bytes == 3 * 8
