"""Two-body propagation: physics invariants and batch/scalar consistency."""
from __future__ import annotations

import math

import numpy as np
import pytest

from repro.constants import MU_EARTH
from repro.orbits.elements import KeplerElements, OrbitalElementsArray
from repro.orbits.propagation import Propagator, propagate_all, propagate_one


def _pop() -> OrbitalElementsArray:
    return OrbitalElementsArray.from_elements(
        [
            KeplerElements(a=7000.0, e=0.001, i=0.9, raan=0.3, argp=1.2, m0=0.0),
            KeplerElements(a=26560.0, e=0.01, i=0.96, raan=2.0, argp=0.5, m0=3.0),
            KeplerElements(a=24000.0, e=0.7, i=0.4, raan=4.0, argp=5.0, m0=1.0),
        ]
    )


class TestPositions:
    def test_radius_within_perigee_apogee(self):
        pop = _pop()
        prop = Propagator(pop)
        for t in np.linspace(0, 20000, 40):
            r = np.linalg.norm(prop.positions(float(t)), axis=1)
            assert np.all(r >= pop.perigee - 1e-6)
            assert np.all(r <= pop.apogee + 1e-6)

    def test_periodicity(self):
        pop = _pop()
        prop = Propagator(pop)
        p0 = prop.positions(0.0)
        for k in range(len(pop)):
            period = float(pop.period[k])
            p_after = prop.positions(period)
            np.testing.assert_allclose(p_after[k], p0[k], atol=1e-6)

    def test_position_at_perigee_and_apogee(self):
        el = KeplerElements(a=10000.0, e=0.3, i=0.0, raan=0.0, argp=0.0, m0=0.0)
        # m0=0 means the object starts at perigee, on the +x axis.
        pos = propagate_one(el, 0.0)
        np.testing.assert_allclose(pos, [7000.0, 0.0, 0.0], atol=1e-9)
        # Half a period later it is at apogee on the -x axis.
        pos = propagate_one(el, el.period / 2)
        np.testing.assert_allclose(pos, [-13000.0, 0.0, 0.0], atol=1e-6)

    def test_propagate_all_matches_propagator(self):
        pop = _pop()
        np.testing.assert_allclose(
            propagate_all(pop, 500.0), Propagator(pop).positions(500.0)
        )

    def test_solver_choice_is_equivalent(self):
        pop = _pop()
        p_newton = Propagator(pop, solver="newton").positions(1234.0)
        p_contour = Propagator(pop, solver="contour").positions(1234.0)
        np.testing.assert_allclose(p_newton, p_contour, atol=1e-6)

    def test_inclination_bounds_z(self):
        el = KeplerElements(a=7000.0, e=0.0, i=math.radians(30), raan=0.5, argp=0.0, m0=0.0)
        pop = OrbitalElementsArray.from_elements([el])
        prop = Propagator(pop)
        for t in np.linspace(0, el.period, 20):
            z = prop.positions(float(t))[0, 2]
            assert abs(z) <= 7000.0 * math.sin(math.radians(30)) + 1e-6


class TestVelocities:
    def test_vis_viva(self):
        pop = _pop()
        prop = Propagator(pop)
        for t in (0.0, 777.0, 5000.0):
            pos = prop.positions(t)
            vel = prop.velocities(t)
            r = np.linalg.norm(pos, axis=1)
            v = np.linalg.norm(vel, axis=1)
            expected = np.sqrt(MU_EARTH * (2.0 / r - 1.0 / pop.a))
            np.testing.assert_allclose(v, expected, rtol=1e-9)

    def test_velocity_is_position_derivative(self):
        pop = _pop()
        prop = Propagator(pop)
        t, h = 300.0, 1e-3
        numeric = (prop.positions(t + h) - prop.positions(t - h)) / (2 * h)
        np.testing.assert_allclose(prop.velocities(t), numeric, rtol=1e-5, atol=1e-7)

    def test_states_consistent_with_separate_calls(self):
        pop = _pop()
        prop = Propagator(pop)
        pos, vel = prop.states(42.0)
        np.testing.assert_allclose(pos, prop.positions(42.0))
        np.testing.assert_allclose(vel, prop.velocities(42.0), rtol=1e-9)

    def test_speeds_match_velocity_norm(self):
        pop = _pop()
        prop = Propagator(pop)
        np.testing.assert_allclose(
            prop.speeds(10.0), np.linalg.norm(prop.velocities(10.0), axis=1), rtol=1e-9
        )


class TestConservation:
    def test_specific_energy_conserved(self):
        pop = _pop()
        prop = Propagator(pop)
        energies = []
        for t in np.linspace(0, 10000, 15):
            pos, vel = prop.states(float(t))
            r = np.linalg.norm(pos, axis=1)
            v2 = np.einsum("ij,ij->i", vel, vel)
            energies.append(0.5 * v2 - MU_EARTH / r)
        energies = np.array(energies)
        np.testing.assert_allclose(
            energies, np.broadcast_to(energies[0], energies.shape), rtol=1e-9
        )

    def test_angular_momentum_conserved(self):
        pop = _pop()
        prop = Propagator(pop)
        h_ref = None
        for t in np.linspace(0, 9000, 10):
            pos, vel = prop.states(float(t))
            h = np.cross(pos, vel)
            if h_ref is None:
                h_ref = h
            else:
                np.testing.assert_allclose(h, h_ref, rtol=1e-9, atol=1e-6)

    def test_memory_bytes_positive_and_linear(self):
        pop = _pop()
        assert Propagator(pop).memory_bytes == len(pop) * 5 * 3 * 8


class TestWarmStartCache:
    """The propagator's per-lane eccentric-anomaly cache must only ever
    accelerate the solve, never change what it converges to."""

    def test_second_batch_call_matches_fresh_propagator(self):
        pop = _pop()
        warm = Propagator(pop)
        times1 = np.linspace(0.0, 4000.0, 9)
        times2 = times1 + 11.0
        warm.positions_batch(times1)  # primes the cache
        cached = warm.positions_batch(times2)
        fresh = Propagator(pop).positions_batch(times2)
        np.testing.assert_allclose(cached, fresh, atol=1e-6)

    def test_scalar_calls_warm_each_other(self):
        pop = _pop()
        warm = Propagator(pop)
        seq = [warm.positions(float(t)) for t in np.linspace(0, 8000, 25)]
        cold = Propagator(pop, warm_start=False)
        for t, p in zip(np.linspace(0, 8000, 25), seq):
            np.testing.assert_allclose(p, cold.positions(float(t)), atol=1e-6)

    def test_warm_start_disabled_is_deterministic(self):
        pop = _pop()
        prop = Propagator(pop, warm_start=False)
        times = np.array([0.0, 500.0, 1000.0])
        first = prop.positions_batch(times)
        second = prop.positions_batch(times)
        np.testing.assert_array_equal(first, second)

    def test_warm_start_auto_disabled_for_direct_solvers(self):
        pop = _pop()
        assert Propagator(pop, solver="newton").warm_start
        assert Propagator(pop, solver="halley").warm_start
        assert not Propagator(pop, solver="contour").warm_start
        assert not Propagator(pop, solver="bisect").warm_start

    def test_contour_batch_still_consistent(self):
        """The contour solver keeps the flattened path; results must agree
        with the warm 2-D Newton path."""
        pop = _pop()
        times = np.array([0.0, 321.0, 7777.0])
        contour = Propagator(pop, solver="contour").positions_batch(times)
        newton = Propagator(pop, solver="newton")
        newton.positions_batch(times - 5.0)  # prime the warm cache
        np.testing.assert_allclose(
            newton.positions_batch(times), contour, atol=1e-6
        )


class TestBatchPropagation:
    def test_positions_batch_matches_per_time(self):
        pop = _pop()
        prop = Propagator(pop)
        times = np.array([0.0, 123.4, 5000.0, 86400.0])
        batch = prop.positions_batch(times)
        assert batch.shape == (4, len(pop), 3)
        for k, t in enumerate(times):
            np.testing.assert_allclose(batch[k], prop.positions(float(t)), atol=1e-9)

    def test_positions_batch_validation(self):
        prop = Propagator(_pop())
        with pytest.raises(ValueError, match="1-D"):
            prop.positions_batch(np.zeros((2, 2)))

    def test_batch_respects_solver_choice(self):
        pop = _pop()
        newton = Propagator(pop, solver="newton").positions_batch(np.array([10.0, 20.0]))
        contour = Propagator(pop, solver="contour").positions_batch(np.array([10.0, 20.0]))
        np.testing.assert_allclose(newton, contour, atol=1e-6)
