"""KeplerElements and OrbitalElementsArray: validation and derived values."""
from __future__ import annotations

import math

import numpy as np
import pytest

from repro.constants import MU_EARTH, TWO_PI
from repro.orbits.elements import KeplerElements, OrbitalElementsArray


def _iss_like() -> KeplerElements:
    return KeplerElements(a=6790.0, e=0.0005, i=math.radians(51.6), raan=1.0, argp=2.0, m0=0.5)


class TestKeplerElements:
    def test_period_matches_keplers_third_law(self):
        el = _iss_like()
        expected = TWO_PI * math.sqrt(el.a**3 / MU_EARTH)
        assert el.period == pytest.approx(expected, rel=1e-12)
        # ISS period is about 92-93 minutes.
        assert 90 * 60 < el.period < 95 * 60

    def test_mean_motion_times_period_is_two_pi(self):
        el = _iss_like()
        assert el.mean_motion * el.period == pytest.approx(TWO_PI)

    def test_apogee_perigee(self):
        el = KeplerElements(a=10000.0, e=0.2, i=0.1, raan=0.0, argp=0.0, m0=0.0)
        assert el.apogee == pytest.approx(12000.0)
        assert el.perigee == pytest.approx(8000.0)
        assert el.semi_latus_rectum == pytest.approx(10000.0 * (1 - 0.04))

    def test_angular_momentum(self):
        el = _iss_like()
        assert el.specific_angular_momentum == pytest.approx(
            math.sqrt(MU_EARTH * el.semi_latus_rectum)
        )

    def test_mean_anomaly_advances_linearly_and_wraps(self):
        el = _iss_like()
        assert el.mean_anomaly_at(0.0) == pytest.approx(el.m0)
        assert el.mean_anomaly_at(el.period) == pytest.approx(el.m0, abs=1e-9)
        quarter = el.mean_anomaly_at(el.period / 4)
        assert quarter == pytest.approx((el.m0 + math.pi / 2) % TWO_PI)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(a=-1.0, e=0.1, i=0.1, raan=0, argp=0, m0=0),
            dict(a=0.0, e=0.1, i=0.1, raan=0, argp=0, m0=0),
            dict(a=7000.0, e=1.0, i=0.1, raan=0, argp=0, m0=0),
            dict(a=7000.0, e=-0.1, i=0.1, raan=0, argp=0, m0=0),
            dict(a=7000.0, e=0.1, i=4.0, raan=0, argp=0, m0=0),
        ],
    )
    def test_invalid_elements_rejected(self, kwargs):
        with pytest.raises(ValueError):
            KeplerElements(**kwargs)


class TestOrbitalElementsArray:
    def test_from_elements_round_trip(self):
        els = [_iss_like(), KeplerElements(a=42164.0, e=0.0004, i=0.01, raan=3.0, argp=1.0, m0=2.0)]
        pop = OrbitalElementsArray.from_elements(els)
        assert len(pop) == 2
        back = pop[1]
        assert back == els[1]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            OrbitalElementsArray(
                a=np.array([7000.0, 8000.0]),
                e=np.array([0.0]),
                i=np.array([0.0, 0.0]),
                raan=np.array([0.0, 0.0]),
                argp=np.array([0.0, 0.0]),
                m0=np.array([0.0, 0.0]),
            )

    def test_invalid_values_rejected(self):
        ok = np.array([0.0, 0.0])
        with pytest.raises(ValueError):
            OrbitalElementsArray(np.array([7000.0, -1.0]), ok, ok, ok, ok, ok)
        with pytest.raises(ValueError):
            OrbitalElementsArray(np.array([7000.0, 8000.0]), np.array([0.0, 1.0]), ok, ok, ok, ok)

    def test_subset_and_concatenate(self):
        els = [
            KeplerElements(a=7000.0 + 100 * k, e=0.001 * k, i=0.1, raan=0.2, argp=0.3, m0=0.4)
            for k in range(5)
        ]
        pop = OrbitalElementsArray.from_elements(els)
        sub = pop.subset(np.array([1, 3]))
        assert len(sub) == 2
        assert sub[0] == els[1]
        merged = OrbitalElementsArray.concatenate([sub, pop.subset(np.array([0]))])
        assert len(merged) == 3
        assert merged[2] == els[0]

    def test_vectorised_derived_quantities_match_scalar(self, small_population):
        pop = small_population
        for k in (0, 17, 101):
            el = pop[k]
            assert pop.period[k] == pytest.approx(el.period)
            assert pop.apogee[k] == pytest.approx(el.apogee)
            assert pop.perigee[k] == pytest.approx(el.perigee)

    def test_mean_anomaly_at_vectorised(self, small_population):
        pop = small_population
        t = 1234.5
        m = pop.mean_anomaly_at(t)
        el = pop[3]
        assert m[3] == pytest.approx(el.mean_anomaly_at(t))
        assert np.all((m >= 0) & (m < TWO_PI))

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            OrbitalElementsArray.from_elements([])
