"""Orbit-to-orbit geometry: plane angles, node lines, sampled distances."""
from __future__ import annotations

import math

import numpy as np
import pytest

from repro.orbits.elements import KeplerElements
from repro.orbits.geometry import (
    is_coplanar,
    mutual_node_line,
    node_crossing_radii,
    plane_angle,
    radius_at_true_anomaly,
    sampled_orbit_distance,
    true_anomaly_of_direction,
)


def _el(a=7000.0, e=0.0, i=0.0, raan=0.0, argp=0.0, m0=0.0) -> KeplerElements:
    return KeplerElements(a=a, e=e, i=i, raan=raan, argp=argp, m0=m0)


class TestPlaneAngle:
    def test_same_plane_zero(self):
        assert plane_angle(_el(i=0.5, raan=1.0), _el(a=8000, i=0.5, raan=1.0)) == pytest.approx(0.0, abs=1e-12)

    def test_perpendicular_planes(self):
        assert plane_angle(_el(i=0.0), _el(i=math.pi / 2)) == pytest.approx(math.pi / 2)

    def test_coplanar_detection_with_tolerance(self):
        assert is_coplanar(_el(i=0.5), _el(i=0.5 + math.radians(0.5)))
        assert not is_coplanar(_el(i=0.5), _el(i=0.5 + math.radians(5.0)))
        # Anti-parallel planes (prograde vs retrograde) are coplanar too.
        assert is_coplanar(_el(i=0.01), _el(i=math.pi - 0.01, raan=math.pi))


class TestNodeLine:
    def test_coplanar_raises(self):
        with pytest.raises(ValueError, match="coplanar"):
            mutual_node_line(_el(i=0.3), _el(i=0.3))

    def test_node_line_in_both_planes(self):
        e1 = _el(i=math.radians(50), raan=0.3)
        e2 = _el(i=math.radians(70), raan=1.1)
        node = mutual_node_line(e1, e2)
        from repro.orbits.frames import orbit_normal

        assert abs(np.dot(node, orbit_normal(e1.i, e1.raan))) < 1e-12
        assert abs(np.dot(node, orbit_normal(e2.i, e2.raan))) < 1e-12
        assert np.linalg.norm(node) == pytest.approx(1.0)

    def test_equatorial_vs_inclined_node_is_line_of_nodes(self):
        e1 = _el(i=0.0)
        e2 = _el(i=math.radians(45), raan=0.0)
        node = mutual_node_line(e1, e2)
        # The inclined orbit ascends through the equator along +x (raan=0).
        np.testing.assert_allclose(np.abs(node), [1.0, 0.0, 0.0], atol=1e-12)


class TestAnomalyOfDirection:
    def test_perigee_direction_is_zero(self):
        el = _el(e=0.1, i=0.4, raan=0.7, argp=1.3)
        from repro.orbits.frames import perifocal_to_eci_matrix

        p_axis = perifocal_to_eci_matrix(el.i, el.raan, el.argp)[:, 0]
        assert true_anomaly_of_direction(el, p_axis) == pytest.approx(0.0, abs=1e-12)

    def test_quarter_orbit_direction(self):
        el = _el(e=0.1, i=0.4, raan=0.7, argp=1.3)
        from repro.orbits.frames import perifocal_to_eci_matrix

        q_axis = perifocal_to_eci_matrix(el.i, el.raan, el.argp)[:, 1]
        assert true_anomaly_of_direction(el, q_axis) == pytest.approx(math.pi / 2)

    def test_out_of_plane_direction_rejected(self):
        el = _el(i=0.0)
        with pytest.raises(ValueError):
            true_anomaly_of_direction(el, np.array([0.0, 0.0, 1.0]))


class TestRadii:
    def test_radius_formula(self):
        el = _el(a=10000.0, e=0.3)
        assert radius_at_true_anomaly(el, 0.0) == pytest.approx(7000.0)
        assert radius_at_true_anomaly(el, math.pi) == pytest.approx(13000.0)

    def test_node_crossing_radii_symmetry_for_circular(self):
        e1 = _el(a=7000.0, i=math.radians(30))
        e2 = _el(a=7005.0, i=math.radians(60))
        (r1a, r2a), (r1d, r2d) = node_crossing_radii(e1, e2)
        assert r1a == pytest.approx(7000.0)
        assert r1d == pytest.approx(7000.0)
        assert r2a == pytest.approx(7005.0)
        assert r2d == pytest.approx(7005.0)


class TestSampledOrbitDistance:
    def test_concentric_circular_orbits(self):
        d = sampled_orbit_distance(_el(a=7000.0), _el(a=7100.0, i=1e-6))
        assert d == pytest.approx(100.0, abs=0.5)

    def test_crossing_orbits_distance_near_zero(self):
        e1 = _el(a=7000.0, i=math.radians(40))
        e2 = _el(a=7000.0, i=math.radians(80))
        assert sampled_orbit_distance(e1, e2) < 1.0

    def test_distance_is_symmetric(self):
        e1 = _el(a=7000.0, e=0.05, i=0.3, raan=0.1, argp=0.7)
        e2 = _el(a=8500.0, e=0.12, i=1.1, raan=2.0, argp=3.0)
        d12 = sampled_orbit_distance(e1, e2)
        d21 = sampled_orbit_distance(e2, e1)
        assert d12 == pytest.approx(d21, rel=1e-6)

    def test_separated_shells(self):
        d = sampled_orbit_distance(_el(a=7000.0), _el(a=9000.0, i=0.5))
        assert d > 1500.0
