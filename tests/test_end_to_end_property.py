"""End-to-end completeness property over randomised two-object systems.

The single most important invariant of the whole system: for *any* pair of
valid orbits, the grid variant must report every conjunction a dense
brute-force scan finds — the Eq. 1 / interval-radius machinery leaves no
blind spots.  Hypothesis drives randomised orbit geometries through both
pipelines.
"""
from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection.api import screen
from repro.detection.types import ScreeningConfig
from repro.orbits.elements import KeplerElements, OrbitalElementsArray
from repro.validation import brute_force_screen

CFG = ScreeningConfig(threshold_km=20.0, duration_s=900.0, seconds_per_sample=2.0)


def _orbit(rng, a_lo=6800.0, a_hi=8500.0):
    return KeplerElements(
        a=float(rng.uniform(a_lo, a_hi)),
        e=float(rng.uniform(0.0, 0.05)),
        i=float(rng.uniform(0.0, math.pi)),
        raan=float(rng.uniform(0.0, 2 * math.pi)),
        argp=float(rng.uniform(0.0, 2 * math.pi)),
        m0=float(rng.uniform(0.0, 2 * math.pi)),
    )


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_grid_matches_oracle_on_random_pairs(seed):
    rng = np.random.default_rng(seed)
    pop = OrbitalElementsArray.from_elements([_orbit(rng), _orbit(rng)])
    oracle = brute_force_screen(pop, CFG, oversample=4)
    grid = screen(pop, CFG, method="grid", backend="vectorized")
    assert grid.unique_pairs() == oracle.unique_pairs(), (
        f"seed {seed}: grid {grid.unique_pairs()} vs oracle {oracle.unique_pairs()}"
    )
    # Event-level agreement: same TCAs within a sample step, same PCAs.
    o_events = sorted((round(t, 0), round(p, 2)) for t, p in zip(oracle.tca_s, oracle.pca_km))
    g_events = sorted((round(t, 0), round(p, 2)) for t, p in zip(grid.tca_s, grid.pca_km))
    # TCAs at the span edge may differ by interval ownership; compare counts
    # and PCA multisets, which are ownership-independent.
    assert len(o_events) == len(g_events), (seed, o_events, g_events)
    for (ot, op), (gt, gp) in zip(o_events, g_events):
        assert abs(op - gp) <= 0.05, (seed, o_events, g_events)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_hybrid_never_misses_oracle_pairs(seed):
    rng = np.random.default_rng(seed)
    pop = OrbitalElementsArray.from_elements([_orbit(rng) for _ in range(4)])
    oracle = brute_force_screen(pop, CFG, oversample=4)
    hybrid = screen(pop, CFG, method="hybrid", backend="vectorized")
    assert oracle.unique_pairs() <= hybrid.unique_pairs(), seed
