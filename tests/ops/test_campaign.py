"""Screening campaigns: epoch advance, event tracking, risk summaries."""
from __future__ import annotations

import math

import numpy as np
import pytest

from repro.detection.types import ScreeningConfig
from repro.ops.campaign import ScreeningCampaign
from repro.orbits.elements import KeplerElements, OrbitalElementsArray
from repro.orbits.propagation import Propagator
from repro.population.scenarios import megaconstellation

CFG = ScreeningConfig(threshold_km=5.0, duration_s=2000.0, seconds_per_sample=1.0,
                      hybrid_seconds_per_sample=8.0)


@pytest.fixture()
def periodic_pair(crossing_pair):
    """The engineered pair: conjunctions near t=0 and every ~2915 s."""
    return crossing_pair


class TestEpochAdvance:
    def test_two_body_advance_matches_propagation(self, periodic_pair):
        campaign = ScreeningCampaign(periodic_pair, CFG)
        advanced = campaign._advanced_population(1234.0)
        p_direct = Propagator(periodic_pair).positions(1234.0)
        p_advanced = Propagator(advanced).positions(0.0)
        np.testing.assert_allclose(p_advanced, p_direct, atol=1e-6)

    def test_j2_advance_moves_the_plane(self, periodic_pair):
        campaign = ScreeningCampaign(periodic_pair, CFG, use_j2=True)
        advanced = campaign._advanced_population(86400.0)
        drift = (advanced.raan - periodic_pair.raan + math.pi) % (2 * math.pi) - math.pi
        assert np.all(drift < 0.0)  # prograde planes regress


class TestEventTracking:
    def test_windows_find_the_periodic_conjunctions(self, periodic_pair):
        campaign = ScreeningCampaign(periodic_pair, CFG, method="grid")
        campaign.run(3)  # covers [0, 6000): sub-threshold TCAs at ~0 and ~2915
        assert campaign.total_conjunctions_seen >= 2
        assert len(campaign.events) >= 2
        # Absolute TCAs line up with the known encounter cadence.
        tcas = sorted(ev.tca_abs_s for ev in campaign.events)
        assert tcas[0] == pytest.approx(0.0, abs=5.0)
        assert tcas[1] == pytest.approx(2914.5, abs=5.0)

    def test_same_event_not_duplicated_across_overlap(self, periodic_pair):
        """A conjunction found twice at the same absolute TCA merges."""
        campaign = ScreeningCampaign(periodic_pair, CFG, method="grid")
        campaign.run(2)
        n_events = len(campaign.events)
        # Re-screen window 0's span manually: inject duplicates.
        for ev in list(campaign.events):
            campaign.events_before = n_events
            match = campaign._find_event(ev.i, ev.j, ev.tca_abs_s + 1.0)
            assert match is ev  # within tolerance -> same event

    def test_day_summaries(self, periodic_pair):
        campaign = ScreeningCampaign(periodic_pair, CFG, method="grid")
        days = campaign.run(2)
        assert [d.window for d in days] == [0, 1]
        assert days[1].start_s == pytest.approx(CFG.duration_s)
        assert all(d.new_events + d.reobserved_events == d.result.n_conjunctions for d in days)

    def test_run_validation(self, periodic_pair):
        campaign = ScreeningCampaign(periodic_pair, CFG)
        with pytest.raises(ValueError):
            campaign.run(0)


class TestRefEngineAgreement:
    """Campaigns must see the same events whichever REF engine runs."""

    def test_batch_and_scalar_engines_find_identical_events(self, periodic_pair):
        cfg_scalar = ScreeningConfig(
            threshold_km=CFG.threshold_km, duration_s=CFG.duration_s,
            seconds_per_sample=CFG.seconds_per_sample,
            hybrid_seconds_per_sample=CFG.hybrid_seconds_per_sample,
            ref_engine="scalar",
        )
        batch = ScreeningCampaign(periodic_pair, CFG, method="grid", backend="serial")
        batch.run(3)
        scalar = ScreeningCampaign(
            periodic_pair, cfg_scalar, method="grid", backend="serial"
        )
        scalar.run(3)
        assert len(batch.events) == len(scalar.events)
        for b, s in zip(
            sorted(batch.events, key=lambda ev: ev.tca_abs_s),
            sorted(scalar.events, key=lambda ev: ev.tca_abs_s),
        ):
            assert (b.i, b.j) == (s.i, s.j)
            assert b.tca_abs_s == pytest.approx(s.tca_abs_s, abs=1e-3)
            assert b.pca_km == pytest.approx(s.pca_km, abs=1e-4)

    def test_backends_agree_within_campaign(self, periodic_pair):
        runs = {}
        for backend in ("serial", "threads", "vectorized"):
            campaign = ScreeningCampaign(
                periodic_pair, CFG, method="grid", backend=backend
            )
            campaign.run(2)
            runs[backend] = sorted(
                (ev.i, ev.j, round(ev.tca_abs_s, 6)) for ev in campaign.events
            )
        assert runs["serial"] == runs["threads"] == runs["vectorized"]


class TestRiskSummary:
    def test_sorted_by_probability(self, periodic_pair):
        campaign = ScreeningCampaign(periodic_pair, CFG, method="grid")
        campaign.run(3)
        summary = campaign.risk_summary()
        probs = [p for _, _, p in summary]
        assert probs == sorted(probs, reverse=True)
        assert all(0.0 <= p <= 1.0 for p in probs)

    def test_longer_lead_means_larger_sigma(self, periodic_pair):
        campaign = ScreeningCampaign(periodic_pair, CFG, method="grid")
        campaign.run(1)  # only the first window: later TCAs unseen
        summary = campaign.risk_summary(sigma0_km=0.1, growth_km_per_day=1.0)
        assert summary  # at least the t~0 event
        for ev, sigma, _ in summary:
            assert sigma >= 0.1

    def test_validation(self, periodic_pair):
        campaign = ScreeningCampaign(periodic_pair, CFG)
        with pytest.raises(ValueError):
            campaign.risk_summary(sigma0_km=0.0)


class TestEventIndexRegression:
    """The (i, j)-indexed event lookup must be observationally identical
    to the original linear scan over the whole track list."""

    def test_dense_50_window_campaign_matches_brute_force(self):
        """50 windows over a dense population: replay every window's
        conjunctions through the old O(events) linear scan and demand the
        identical track list, event for event and sighting for sighting."""
        pop = megaconstellation(6, 10, 550.0, math.radians(53))
        cfg = ScreeningConfig(threshold_km=25.0, duration_s=400.0, seconds_per_sample=5.0)
        campaign = ScreeningCampaign(pop, cfg, method="grid")
        campaign.run(50)

        # Brute force: the pre-index first-match semantics, replayed from
        # the recorded per-window results.
        brute: "list[dict]" = []
        for day in campaign.days:
            for c in day.result.conjunctions():
                tca_abs = day.start_s + c.tca_s
                match = None
                for ev in brute:  # the old linear scan over all events
                    if (
                        ev["i"] == c.i and ev["j"] == c.j
                        and abs(ev["last_tca_abs_s"] - tca_abs) <= campaign.tca_match_tol_s
                    ):
                        match = ev
                        break
                if match is None:
                    brute.append({
                        "i": c.i, "j": c.j, "tca_abs_s": tca_abs,
                        "last_tca_abs_s": tca_abs, "pca_km": c.pca_km,
                        "first": day.window, "last": day.window, "sightings": 1,
                    })
                else:
                    match["last"] = day.window
                    match["last_tca_abs_s"] = tca_abs
                    match["sightings"] += 1
                    if c.pca_km < match["pca_km"]:
                        match["pca_km"] = c.pca_km
                        match["tca_abs_s"] = tca_abs

        assert len(campaign.events) == len(brute)
        assert campaign.total_conjunctions_seen >= 50  # actually dense
        for ev, ref in zip(campaign.events, brute):
            assert (ev.i, ev.j) == (ref["i"], ref["j"])
            assert ev.tca_abs_s == ref["tca_abs_s"]
            assert ev.pca_km == ref["pca_km"]
            assert ev.first_seen_window == ref["first"]
            assert ev.last_seen_window == ref["last"]
            assert ev.sightings == ref["sightings"]

    def test_index_and_track_list_stay_in_sync(self, periodic_pair):
        campaign = ScreeningCampaign(periodic_pair, CFG, method="grid")
        campaign.run(3)
        indexed = [ev for evs in campaign._events_by_pair.values() for ev in evs]
        assert len(indexed) == len(campaign.events)
        assert all(ev in campaign.events for ev in indexed)
        for (i, j), evs in campaign._events_by_pair.items():
            assert all((ev.i, ev.j) == (i, j) for ev in evs)


def _scripted_campaign(monkeypatch, cfg, sightings):
    """A campaign whose windows see scripted conjunctions.

    ``sightings`` is one list per window of ``(i, j, tca_in_window_s,
    pca_km)`` tuples; ``screen`` is monkeypatched to replay them, so the
    tests exercise the event-tracking logic alone, with exact TCAs.
    """
    import repro.ops.campaign as campaign_mod
    from repro.detection.types import ScreeningResult

    queue = [list(rows) for rows in sightings]

    def fake_screen(population, config, method, backend, tracer, metrics):
        rows = queue.pop(0)
        i = np.array([r[0] for r in rows], dtype=np.int64)
        j = np.array([r[1] for r in rows], dtype=np.int64)
        tca = np.array([r[2] for r in rows], dtype=np.float64)
        pca = np.array([r[3] for r in rows], dtype=np.float64)
        return ScreeningResult(
            method=method, backend=backend, i=i, j=j, tca_s=tca, pca_km=pca,
            candidates_refined=len(rows),
        )

    monkeypatch.setattr(campaign_mod, "screen", fake_screen)
    pop = megaconstellation(2, 3, 550.0, math.radians(53))
    campaign = ScreeningCampaign(pop, cfg, method="grid")
    campaign.run(len(sightings))
    return campaign


class TestRiskLeadTimeRegression:
    """The last observation is dated at window *start*, not window end."""

    def test_mid_window_tca_has_nonzero_lead(self, monkeypatch):
        # One window [0, 2000); a single event with TCA mid-window at
        # t=1000.  The screening snapshot was propagated to the window's
        # start epoch (t=0), so the geometry is 1000 s stale at TCA.
        # Dating the observation at the window end (t=2000) clamped this
        # lead to zero and reported the optimistic floor sigma0.
        cfg = ScreeningConfig(threshold_km=5.0, duration_s=2000.0,
                              seconds_per_sample=1.0)
        campaign = _scripted_campaign(monkeypatch, cfg, [[(0, 1, 1000.0, 0.5)]])
        assert len(campaign.events) == 1
        ((ev, sigma, _poc),) = campaign.risk_summary(
            sigma0_km=0.1, growth_km_per_day=86.4
        )
        # growth 86.4 km/day == 1e-3 km/s of lead: sigma = 0.1 + 1.0
        assert sigma == pytest.approx(0.1 + 1e-3 * 1000.0)

    def test_lead_measured_from_last_seen_window_start(self, monkeypatch):
        # Seen in windows 0 and 1 (TCA drifts within tolerance); the best
        # sighting's TCA sits at absolute t=2010, just inside window 1.
        # The last observation happened at window 1's start (t=2000):
        # lead is 10 s — the end-of-window anchor (t=4000) clamped it to
        # zero.
        cfg = ScreeningConfig(threshold_km=5.0, duration_s=2000.0,
                              seconds_per_sample=1.0)
        campaign = _scripted_campaign(
            monkeypatch, cfg,
            [[(0, 1, 1990.0, 0.8)], [(0, 1, 10.0, 0.5)]],
        )
        assert len(campaign.events) == 1
        ((ev, sigma, _poc),) = campaign.risk_summary(
            sigma0_km=0.1, growth_km_per_day=86.4
        )
        assert ev.tca_abs_s == pytest.approx(2010.0)
        assert sigma == pytest.approx(0.1 + 1e-3 * 10.0)


class TestDriftingTcaTracking:
    """A drifting TCA must not fragment one physical event into many."""

    def test_drift_past_tolerance_of_best_sighting_stays_one_event(
        self, monkeypatch
    ):
        # tol=30 s; the TCA walks 25 s per window: 1000, 1025, 1050, 1075.
        # Every re-detection is within tolerance of the *previous* one,
        # but from window 2 on it is >30 s from the best sighting's frozen
        # TCA (t=1000, where the PCA is smallest).  Matching against the
        # best sighting fragmented this into a second track.
        cfg = ScreeningConfig(threshold_km=5.0, duration_s=2000.0,
                              seconds_per_sample=1.0)
        drift = [
            [(0, 1, 1000.0, 0.5)],
            [(0, 1, 1025.0 - 2000.0 * 1, 0.8)],
            [(0, 1, 1050.0 - 2000.0 * 2, 0.9)],
            [(0, 1, 1075.0 - 2000.0 * 3, 0.7)],
        ]
        campaign = _scripted_campaign(monkeypatch, cfg, drift)
        assert len(campaign.events) == 1
        ev = campaign.events[0]
        assert ev.sightings == 4
        assert ev.first_seen_window == 0
        assert ev.last_seen_window == 3
        # Best-PCA sighting stays the ranked geometry...
        assert ev.pca_km == pytest.approx(0.5)
        assert ev.tca_abs_s == pytest.approx(1000.0)
        # ...while matching keys off the freshest sighting.
        assert ev.last_tca_abs_s == pytest.approx(1075.0)

    def test_distinct_events_still_separate(self, monkeypatch):
        # Two genuinely different encounters of the same pair in one
        # window (TCAs 61 s apart, tol 30) stay two tracked events.
        cfg = ScreeningConfig(threshold_km=5.0, duration_s=2000.0,
                              seconds_per_sample=1.0)
        campaign = _scripted_campaign(
            monkeypatch, cfg, [[(0, 1, 1000.0, 0.5), (0, 1, 1061.0, 0.6)]]
        )
        assert len(campaign.events) == 2


class TestClosedCampaign:
    """run_window after close() must fail loudly, not leak a new pool."""

    def test_run_window_after_close_raises(self, periodic_pair):
        campaign = ScreeningCampaign(periodic_pair, CFG, method="grid")
        campaign.run(1)
        campaign.close()
        with pytest.raises(RuntimeError, match="closed"):
            campaign.run_window()

    def test_close_is_idempotent(self, periodic_pair):
        campaign = ScreeningCampaign(periodic_pair, CFG, method="grid")
        campaign.close()
        campaign.close()
        with pytest.raises(RuntimeError, match="closed"):
            campaign.run_window()

    def test_context_manager_exit_closes(self, periodic_pair):
        with ScreeningCampaign(periodic_pair, CFG, method="grid") as campaign:
            campaign.run(1)
        with pytest.raises(RuntimeError, match="closed"):
            campaign.run_window()
