"""Cube method: statistical rates and the documented limitations."""
from __future__ import annotations

import math

import numpy as np
import pytest

from repro.detection.api import screen
from repro.detection.cube import cube_estimate
from repro.detection.types import ScreeningConfig
from repro.orbits.elements import KeplerElements, OrbitalElementsArray


def _same_orbit_phased_pair() -> OrbitalElementsArray:
    el1 = KeplerElements(a=7000.0, e=0.001, i=0.9, raan=0.5, argp=0.0, m0=0.0)
    el2 = KeplerElements(a=7000.0, e=0.001, i=0.9, raan=0.5, argp=0.0, m0=math.pi)
    return OrbitalElementsArray.from_elements([el1, el2])


def _coplanar_rings() -> OrbitalElementsArray:
    """Two nearly-coplanar rings 10 km apart: co-located along the whole
    orbit, so cube cohabitation happens often enough for a fast test."""
    el1 = KeplerElements(a=7000.0, e=0.0005, i=0.9, raan=0.5, argp=0.0, m0=0.0)
    el2 = KeplerElements(a=7010.0, e=0.0005, i=0.9, raan=0.5, argp=0.0, m0=1.0)
    return OrbitalElementsArray.from_elements([el1, el2])


def test_rate_positive_for_cohabiting_orbits():
    est = cube_estimate(_coplanar_rings(), cube_size_km=200.0, n_samples=2000, seed=1)
    assert est.total_rate_per_s > 0.0
    assert (0, 1) in est.pair_rates


def test_rate_zero_for_disjoint_shells():
    el1 = KeplerElements(a=7000.0, e=0.0, i=0.5, raan=0.0, argp=0.0, m0=0.0)
    el2 = KeplerElements(a=9000.0, e=0.0, i=0.5, raan=0.0, argp=0.0, m0=0.0)
    pop = OrbitalElementsArray.from_elements([el1, el2])
    est = cube_estimate(pop, cube_size_km=50.0, n_samples=200, seed=2)
    assert est.total_rate_per_s == 0.0


def test_constellation_limitation_reproduced():
    """Lewis et al. [22] / Section II: the Cube method's randomised
    anomalies destroy constellation phasing, so a phased same-orbit pair —
    which deterministically never meets — still accrues a collision rate.
    The deterministic screening correctly reports nothing."""
    pop = _same_orbit_phased_pair()
    cfg = ScreeningConfig(threshold_km=5.0, duration_s=6000.0, seconds_per_sample=1.0)
    deterministic = screen(pop, cfg, method="grid")
    assert deterministic.n_conjunctions == 0

    est = cube_estimate(pop, cube_size_km=200.0, n_samples=2000, seed=3)
    assert est.total_rate_per_s > 0.0, (
        "the Cube method should (wrongly, by design) assign this pair a rate"
    )


def test_expected_conjunctions_scales_with_span():
    est = cube_estimate(_coplanar_rings(), cube_size_km=200.0, n_samples=500, seed=4)
    assert est.expected_conjunctions(2000.0) == pytest.approx(
        2.0 * est.expected_conjunctions(1000.0)
    )
    with pytest.raises(ValueError):
        est.expected_conjunctions(0.0)


def test_estimate_is_deterministic_per_seed(crossing_pair):
    e1 = cube_estimate(crossing_pair, cube_size_km=50.0, n_samples=100, seed=5)
    e2 = cube_estimate(crossing_pair, cube_size_km=50.0, n_samples=100, seed=5)
    assert e1.total_rate_per_s == e2.total_rate_per_s


def test_validation(crossing_pair):
    with pytest.raises(ValueError):
        cube_estimate(crossing_pair, cube_size_km=0.0)
    with pytest.raises(ValueError):
        cube_estimate(crossing_pair, n_samples=0)
    with pytest.raises(ValueError):
        cube_estimate(crossing_pair, collision_radius_km=-1.0)
