"""Brent minimiser and the batch golden-section variant."""
from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import minimize_scalar

from repro.detection.brent import BrentResult, brent_minimize, golden_minimize_batch


class TestBrentScalar:
    def test_quadratic(self):
        res = brent_minimize(lambda x: (x - 2.5) ** 2, 0.0, 10.0)
        assert res.x == pytest.approx(2.5, abs=1e-7)
        assert res.fx == pytest.approx(0.0, abs=1e-12)
        assert not res.at_edge

    def test_matches_scipy_on_hard_functions(self):
        funcs = [
            (lambda x: math.sin(x) + 0.1 * x, 2.0, 8.0),
            (lambda x: abs(x - 3.3) + 0.01 * (x - 3.3) ** 2, 0.0, 10.0),
            (lambda x: math.exp(-x) + 0.2 * x, 0.0, 20.0),
            (lambda x: (x**2 - 4) ** 2 + x, -3.0, 0.0),
        ]
        for f, a, b in funcs:
            ours = brent_minimize(f, a, b, tol=1e-10)
            ref = minimize_scalar(f, bounds=(a, b), method="bounded", options={"xatol": 1e-10})
            assert ours.fx == pytest.approx(ref.fun, abs=1e-7)

    def test_edge_flag_on_monotone_function(self):
        res = brent_minimize(lambda x: x, 0.0, 1.0)
        assert res.at_edge
        assert res.x == pytest.approx(0.0, abs=1e-6)

    def test_edge_flag_decreasing(self):
        res = brent_minimize(lambda x: -x, 0.0, 1.0)
        assert res.at_edge
        assert res.x == pytest.approx(1.0, abs=1e-6)

    def test_interior_minimum_not_flagged(self):
        res = brent_minimize(lambda x: (x - 0.5) ** 2, 0.0, 1.0)
        assert not res.at_edge

    def test_validation(self):
        with pytest.raises(ValueError):
            brent_minimize(lambda x: x, 1.0, 1.0)
        with pytest.raises(ValueError):
            brent_minimize(lambda x: x, 0.0, 1.0, tol=0.0)

    @settings(max_examples=100, deadline=None)
    @given(
        centre=st.floats(min_value=-50.0, max_value=50.0),
        width=st.floats(min_value=0.1, max_value=30.0),
        scale=st.floats(min_value=0.01, max_value=100.0),
    )
    def test_unimodal_property(self, centre, width, scale):
        a, b = centre - width, centre + width
        target = centre + 0.3 * width  # interior minimum
        res = brent_minimize(lambda x: scale * (x - target) ** 2, a, b, tol=1e-9)
        assert res.x == pytest.approx(target, abs=1e-5 * max(1.0, abs(target)))

    def test_iteration_count_reported(self):
        res = brent_minimize(lambda x: (x - 1) ** 2, 0.0, 5.0)
        assert 1 <= res.iterations <= 100
        assert isinstance(res, BrentResult)


class TestGoldenBatch:
    def test_matches_scalar_brent(self):
        targets = np.array([1.0, -2.0, 7.5, 0.0])
        a = targets - 3.0
        b = targets + 4.0

        def f(x):
            return (x - targets) ** 2 + 1.0

        x, fx, edge = golden_minimize_batch(f, a, b)
        np.testing.assert_allclose(x, targets, atol=1e-6)
        np.testing.assert_allclose(fx, 1.0, atol=1e-12)
        assert not edge.any()

    def test_edge_detection(self):
        def f(x):
            return x  # monotone: min at the left edge

        x, fx, edge = golden_minimize_batch(f, np.array([0.0]), np.array([1.0]))
        assert edge[0]
        assert x[0] == pytest.approx(0.0, abs=1e-5)

    def test_mixed_edge_and_interior(self):
        def f(x):
            return np.where(np.arange(len(x)) == 0, x, (x - 0.5) ** 2)

        x, fx, edge = golden_minimize_batch(f, np.zeros(2), np.ones(2))
        assert edge.tolist() == [True, False]

    def test_validation(self):
        with pytest.raises(ValueError):
            golden_minimize_batch(lambda x: x, np.array([1.0]), np.array([1.0]))

    def test_non_quadratic_batch(self):
        a = np.array([2.0, 0.0])
        b = np.array([8.0, 20.0])

        def f(x):
            return np.where(
                np.arange(len(x)) == 0, np.sin(x) + 0.1 * x, np.exp(-x) + 0.2 * x
            )

        x, fx, _ = golden_minimize_batch(f, a, b)
        ref0 = minimize_scalar(lambda t: math.sin(t) + 0.1 * t, bounds=(2, 8), method="bounded")
        ref1 = minimize_scalar(lambda t: math.exp(-t) + 0.2 * t, bounds=(0, 20), method="bounded")
        assert fx[0] == pytest.approx(ref0.fun, abs=1e-6)
        assert fx[1] == pytest.approx(ref1.fun, abs=1e-6)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_batch_equals_scalar_property(self, seed):
        rng = np.random.default_rng(seed)
        m = 10
        targets = rng.uniform(-10, 10, m)
        a = targets - rng.uniform(0.5, 5.0, m)
        b = targets + rng.uniform(0.5, 5.0, m)
        scale = rng.uniform(0.1, 10.0, m)

        def f(x):
            return scale * (x - targets) ** 2

        x, fx, edge = golden_minimize_batch(f, a, b)
        np.testing.assert_allclose(x, targets, atol=1e-5)
        assert not edge.any()


class _Telemetry:
    """Minimal stand-in for RefTelemetry: records what golden reports."""

    def __init__(self):
        self.lanes = 0
        self.iterations = []

    def record_lanes(self, lanes):
        self.lanes += lanes

    def record_golden_iteration(self, lanes_retired=0):
        self.iterations.append(lanes_retired)


class TestGoldenCompaction:
    """Convergence-aware mode: ``tol`` set, lane-aware callback contract."""

    @staticmethod
    def _lane_aware_quadratic(targets):
        def f(x, lanes):
            assert lanes.dtype == np.int64
            assert len(lanes) == len(x)
            return (x - targets[lanes]) ** 2

        return f

    def test_matches_fixed_mode(self):
        rng = np.random.default_rng(7)
        targets = rng.uniform(-20, 20, 200)
        a = targets - rng.uniform(0.5, 8.0, 200)
        b = targets + rng.uniform(0.5, 8.0, 200)
        x_fixed, fx_fixed, edge_fixed = golden_minimize_batch(
            lambda x: (x - targets) ** 2, a, b
        )
        x_c, fx_c, edge_c = golden_minimize_batch(
            self._lane_aware_quadratic(targets), a, b, tol=1e-10
        )
        np.testing.assert_allclose(x_c, x_fixed, atol=1e-7)
        np.testing.assert_array_equal(edge_c, edge_fixed)

    def test_callback_receives_original_lane_indices(self):
        """After compaction the lanes array must index the *original* batch."""
        targets = np.array([0.0, 5.0, -3.0, 8.0])
        seen = []

        def f(x, lanes):
            seen.append(lanes.copy())
            return (x - targets[lanes]) ** 2

        # Wildly different spans: narrow lanes retire long before wide ones.
        a = targets - np.array([1e-4, 50.0, 1e-4, 50.0])
        b = targets + np.array([1e-4, 50.0, 1e-4, 50.0])
        golden_minimize_batch(f, a, b, tol=1e-6)
        # Some call must have run on the compacted survivors {1, 3} only.
        assert any(set(lanes.tolist()) == {1, 3} for lanes in seen)
        for lanes in seen:
            assert set(lanes.tolist()) <= {0, 1, 2, 3}

    def test_early_exit_on_converged_batch(self):
        tele = _Telemetry()
        targets = np.linspace(-1, 1, 50)
        golden_minimize_batch(
            self._lane_aware_quadratic(targets),
            targets - 1.0,
            targets + 1.0,
            tol=1e-6,
            telemetry=tele,
        )
        assert tele.lanes == 50
        # 0.618^k <= 1e-6 / 2 needs k ~ 31 << 60: the loop exited early.
        assert 0 < len(tele.iterations) < 60
        assert sum(tele.iterations) == 50  # every lane retired exactly once

    def test_fixed_mode_telemetry_counts_full_schedule(self):
        tele = _Telemetry()
        golden_minimize_batch(
            lambda x: (x - 0.5) ** 2, np.zeros(3), np.ones(3), telemetry=tele
        )
        assert tele.lanes == 3
        assert len(tele.iterations) == 60
        assert sum(tele.iterations) == 0  # fixed mode never retires lanes

    def test_iteration_cap_still_returns_all_lanes(self):
        """A tol far below what the cap can reach drains via the cap path."""
        targets = np.array([2.0, -4.0])
        x, fx, _ = golden_minimize_batch(
            self._lane_aware_quadratic(targets),
            targets - 100.0,
            targets + 100.0,
            iterations=5,
            tol=1e-300,
        )
        assert np.all(np.isfinite(x)) and np.all(np.isfinite(fx))
        np.testing.assert_allclose(x, targets, atol=40.0)  # coarse but live

    def test_edge_detection_in_compaction_mode(self):
        def f(x, lanes):
            return np.where(lanes == 0, x, (x - 0.5) ** 2)

        x, fx, edge = golden_minimize_batch(f, np.zeros(2), np.ones(2), tol=1e-8)
        assert edge.tolist() == [True, False]
        assert x[0] == pytest.approx(0.0, abs=1e-5)
        assert x[1] == pytest.approx(0.5, abs=1e-6)

    def test_tol_validation(self):
        with pytest.raises(ValueError, match="tolerance"):
            golden_minimize_batch(
                lambda x, lanes: x, np.zeros(1), np.ones(1), tol=0.0
            )

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_compaction_equals_fixed_property(self, seed):
        rng = np.random.default_rng(seed)
        m = 12
        targets = rng.uniform(-10, 10, m)
        a = targets - rng.uniform(0.5, 5.0, m)
        b = targets + rng.uniform(0.5, 5.0, m)
        scale = rng.uniform(0.1, 10.0, m)

        x, fx, edge = golden_minimize_batch(
            lambda t, lanes: scale[lanes] * (t - targets[lanes]) ** 2,
            a,
            b,
            tol=1e-9,
        )
        np.testing.assert_allclose(x, targets, atol=1e-5)
        assert not edge.any()
