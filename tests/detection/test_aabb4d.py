"""Differential suite for the build-once 4D AABB-tree variant.

The tentpole guarantee: ``screen(method="aabb4d")`` produces final
conjunction sets **byte-identical** to the grid oracle.  Within one
precision policy every oracle flavour ({sorted, hashmap} grid, serial or
processes executor) is itself bit-identical, so the suite compares the
tree variant against each of them with exact array equality; across
precision policies (fp64 vs mixed) the grids themselves only agree to
refinement tolerance, and the tree variant mirrors that contract.
"""
from __future__ import annotations

import math

import numpy as np
import pytest

from repro.detection import ScreeningConfig, screen, screen_aabb4d
from repro.obs import MetricsRegistry, Tracer
from repro.orbits.elements import KeplerElements, OrbitalElementsArray
from repro.parallel.multidevice import screen_grid_multidevice
from repro.population.generator import generate_population

CFG = dict(threshold_km=5.0, duration_s=6000.0, seconds_per_sample=1.0)


def assert_bitwise_equal(a, b):
    np.testing.assert_array_equal(a.i, b.i)
    np.testing.assert_array_equal(a.j, b.j)
    np.testing.assert_array_equal(a.tca_s, b.tca_s)
    np.testing.assert_array_equal(a.pca_km, b.pca_km)


@pytest.fixture(scope="module")
def cluster_population() -> OrbitalElementsArray:
    """A 40-object fan of coplanar-node orbits producing ~900 real
    conjunctions: every pair shares the ascending node with slightly
    different inclinations and radii, like the crossing_pair fixture but
    n-to-n."""
    rng = np.random.default_rng(42)
    els = []
    for k in range(40):
        els.append(
            KeplerElements(
                a=7000.0 + 0.2 * k,
                e=0.001,
                i=math.radians(45.0 + 0.4 * k),
                raan=0.0,
                argp=0.0,
                m0=float(rng.uniform(-2e-4, 2e-4)),
            )
        )
    return OrbitalElementsArray.from_elements(els)


class TestDifferentialVsGridOracle:
    @pytest.mark.parametrize("grid_impl", ["sorted", "hashmap"])
    @pytest.mark.parametrize("precision", ["fp64", "mixed"])
    def test_byte_identical_vs_serial_grid(
        self, cluster_population, grid_impl, precision
    ):
        cfg = ScreeningConfig(grid_impl=grid_impl, precision=precision, **CFG)
        oracle = screen(cluster_population, cfg, method="grid")
        tree = screen(cluster_population, cfg, method="aabb4d")
        assert len(oracle.i) > 0, "scenario must produce conjunctions"
        assert_bitwise_equal(oracle, tree)

    @pytest.mark.parametrize("precision", ["fp64", "mixed"])
    def test_byte_identical_vs_processes_grid(self, cluster_population, precision):
        cfg = ScreeningConfig(precision=precision, **CFG)
        oracle, _ = screen_grid_multidevice(
            cluster_population, cfg, 2, executor="processes"
        )
        tree = screen(cluster_population, cfg, method="aabb4d")
        assert_bitwise_equal(oracle, tree)

    def test_cross_precision_tolerance(self, cluster_population):
        """fp64 vs mixed agree like the grids do: same pairs, close values."""
        a64 = screen(
            cluster_population, ScreeningConfig(precision="fp64", **CFG), method="aabb4d"
        )
        a32 = screen(
            cluster_population, ScreeningConfig(precision="mixed", **CFG), method="aabb4d"
        )
        np.testing.assert_array_equal(a64.i, a32.i)
        np.testing.assert_array_equal(a64.j, a32.j)
        np.testing.assert_allclose(a64.tca_s, a32.tca_s, atol=1e-4)
        np.testing.assert_allclose(a64.pca_km, a32.pca_km, atol=1e-6)

    def test_crossing_pair_scenario(self, crossing_pair):
        cfg = ScreeningConfig(**CFG)
        oracle = screen(crossing_pair, cfg, method="grid")
        tree = screen(crossing_pair, cfg, method="aabb4d")
        assert len(tree.i) == 2
        assert_bitwise_equal(oracle, tree)

    def test_candidate_records_match_grid(self, cluster_population):
        cfg = ScreeningConfig(**CFG)
        oracle = screen(cluster_population, cfg, method="grid")
        tree = screen(cluster_population, cfg, method="aabb4d")
        assert tree.extra["conjunction_records"] == oracle.extra["conjunction_records"]

    @pytest.mark.parametrize("knot_steps", [1, 7, 64, 100000])
    def test_knot_granularity_never_changes_results(
        self, cluster_population, knot_steps
    ):
        """The knot spacing is a pure performance knob."""
        cfg = ScreeningConfig(aabb_knot_steps=knot_steps, **CFG)
        oracle = screen(cluster_population, ScreeningConfig(**CFG), method="grid")
        tree = screen(cluster_population, cfg, method="aabb4d")
        assert_bitwise_equal(oracle, tree)

    def test_smart_sieve_composes(self, cluster_population):
        cfg = ScreeningConfig(use_smart_sieve=True, **CFG)
        oracle = screen(cluster_population, cfg, method="grid")
        tree = screen(cluster_population, cfg, method="aabb4d")
        assert_bitwise_equal(oracle, tree)

    def test_sparse_population_differential(self, small_population):
        cfg = ScreeningConfig(
            threshold_km=2.0, duration_s=1800.0, seconds_per_sample=1.0
        )
        oracle = screen(small_population, cfg, method="grid")
        tree = screen(small_population, cfg, method="aabb4d")
        assert_bitwise_equal(oracle, tree)


class TestScheduleContract:
    def test_pipelined_rejects_loudly(self, crossing_pair):
        """Satellite task: pipelined × aabb4d rejects at validation time,
        the same contract as kdtree/legacy."""
        cfg = ScreeningConfig(schedule="pipelined", **CFG)
        with pytest.raises(ValueError, match="barrier-only"):
            screen(crossing_pair, cfg, method="aabb4d")

    def test_barrier_schedule_reported(self, crossing_pair):
        res = screen(crossing_pair, ScreeningConfig(**CFG), method="aabb4d")
        assert res.extra["schedule"] == "barrier"

    def test_config_validation(self):
        with pytest.raises(ValueError, match="aabb_knot_steps"):
            ScreeningConfig(aabb_knot_steps=0, **CFG)
        with pytest.raises(ValueError, match="occupancy_shell_km"):
            ScreeningConfig(occupancy_shell_km=-1.0, **CFG)


class TestObservability:
    def test_phase_spans_and_funnel(self, crossing_pair):
        tracer = Tracer()
        metrics = MetricsRegistry()
        res = screen(
            crossing_pair, ScreeningConfig(**CFG), method="aabb4d",
            tracer=tracer, metrics=metrics,
        )
        names = {s.name for s in tracer.records()}
        assert {"window", "phase:ALLOC", "phase:INS", "phase:CD", "phase:REF"} <= names
        stages = {s.name for s in metrics.funnel("screen").stages}
        assert {"occupancy", "tree", "narrow", "emit", "refine", "merge"} <= stages
        assert res.extra["occupancy_rejection_rate"] >= 0.0
        assert res.extra["tree_bytes"] > 0
        assert res.extra["bitmap_bytes"] > 0

    def test_occupancy_funnel_measures_rejection(self):
        """Two isolated shells: the prefilter's rejection is visible in
        both the funnel stage and the result metadata."""
        els = [
            KeplerElements(a=7000.0, e=0.001, i=0.9, raan=0.0, argp=0.0, m0=0.0),
            KeplerElements(a=7000.5, e=0.001, i=0.95, raan=0.0, argp=0.0, m0=1e-4),
            KeplerElements(a=17000.0, e=0.0001, i=0.3, raan=2.0, argp=0.0, m0=3.0),
        ]
        pop = OrbitalElementsArray.from_elements(els)
        metrics = MetricsRegistry()
        res = screen_aabb4d(pop, ScreeningConfig(**CFG), metrics=metrics)
        assert res.extra["occupancy_rejection_rate"] > 0.0
        occ = [s for s in metrics.funnel("screen").stages if s.name == "occupancy"]
        assert occ and occ[0].n_out < occ[0].n_in

    def test_timers_cover_all_phases(self, crossing_pair):
        res = screen(crossing_pair, ScreeningConfig(**CFG), method="aabb4d")
        assert {"ALLOC", "INS", "CD", "REF"} <= set(res.timers.totals)


class TestInstrumentationRegression:
    """Satellite task: no detection entry point silently drops
    tracer/metrics (PR 9 fixed kdtree; cube was still dropping them,
    legacy was already threaded — both are pinned here)."""

    def test_cube_threads_tracer_and_metrics(self, small_population):
        from repro.detection import cube_estimate

        tracer = Tracer()
        metrics = MetricsRegistry()
        cube_estimate(
            small_population, n_samples=5, seed=9, tracer=tracer, metrics=metrics
        )
        names = {s.name for s in tracer.records()}
        assert {"cube", "phase:INS", "phase:CD"} <= names
        assert metrics.counter("cube.samples").value == 5
        stages = {s.name for s in metrics.funnel("screen").stages}
        assert {"same_cube", "rate"} <= stages

    def test_cube_results_unchanged_by_instrumentation(self, small_population):
        from repro.detection import cube_estimate

        plain = cube_estimate(small_population, n_samples=5, seed=9)
        traced = cube_estimate(
            small_population, n_samples=5, seed=9,
            tracer=Tracer(), metrics=MetricsRegistry(),
        )
        assert plain.total_rate_per_s == traced.total_rate_per_s
        assert plain.pair_rates == traced.pair_rates

    def test_legacy_threads_tracer_and_metrics(self, crossing_pair):
        tracer = Tracer()
        metrics = MetricsRegistry()
        screen(
            crossing_pair,
            ScreeningConfig(threshold_km=5.0, duration_s=600.0, seconds_per_sample=1.0),
            method="legacy", tracer=tracer, metrics=metrics,
        )
        names = {s.name for s in tracer.records()}
        assert any(n.startswith("phase:") for n in names)
        assert metrics.funnel("screen").stages


class TestMemoryPlanIntegration:
    def test_plan_carries_tree_and_bitmap_bytes(self, crossing_pair):
        cfg = ScreeningConfig(memory_budget_bytes=64 << 20, **CFG)
        res = screen(crossing_pair, cfg, method="aabb4d")
        plan = res.extra["memory_plan"]
        assert plan is not None
        assert plan.tree_bytes > 0
        assert plan.bitmap_bytes > 0
        assert plan.fixed_bytes >= plan.tree_bytes + plan.bitmap_bytes
