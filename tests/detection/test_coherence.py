"""Temporal-coherence pair emission: differential and unit coverage.

The coherence cache is a pure optimisation — every test here pins the
invariant that it never changes a result: byte-identical conjunction sets
against coherence-off across grid implementations, backends and precision
policies, and identical per-step pair sets at the emitter level under
scripted cell-boundary crossings.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.detection.api import screen
from repro.detection.types import ScreeningConfig
from repro.obs.metrics import MetricsRegistry
from repro.orbits.elements import OrbitalElementsArray
from repro.population.generator import generate_population
from repro.spatial.vectorgrid import (
    CoherentPairEmitter,
    PresenceFilter,
    SortedGrid,
    VectorHashGrid,
    _expand_cell_pairs,
)


@pytest.fixture(scope="module")
def coherence_population() -> OrbitalElementsArray:
    """Dense enough that steps emit pairs, small enough to stay fast.

    Each base orbit gets an identical twin (permanent zero-distance pair:
    guaranteed detections and intra-cell emission) plus an along-track
    twin offset by roughly one cell size (persistent *cross-cell*
    adjacencies: the pairs the coherence cache actually replays)."""
    base = generate_population(40, seed=7)
    shifted = OrbitalElementsArray(
        a=base.a.copy(), e=base.e.copy(), i=base.i.copy(),
        raan=base.raan.copy(), argp=base.argp.copy(), m0=base.m0 + 1.3e-3,
    )
    return OrbitalElementsArray.concatenate([base, base, shifted])


def _config(precision: str, grid_impl: str, **kw) -> ScreeningConfig:
    return ScreeningConfig(
        threshold_km=5.0,
        duration_s=120.0,
        seconds_per_sample=0.5,
        precision=precision,
        grid_impl=grid_impl,
        **kw,
    )


class TestCoherenceDifferential:
    """Coherence-on must be byte-identical to coherence-off everywhere."""

    @pytest.mark.parametrize("grid_impl", ["sorted", "hashmap"])
    @pytest.mark.parametrize("backend", ["serial", "vectorized"])
    @pytest.mark.parametrize("precision", ["fp64", "mixed"])
    def test_screen_identical_to_coherence_off(
        self, coherence_population, grid_impl, backend, precision
    ):
        on = screen(
            coherence_population, _config(precision, grid_impl),
            method="grid", backend=backend,
        )
        off = screen(
            coherence_population, _config(precision, grid_impl, use_coherence=False),
            method="grid", backend=backend,
        )
        np.testing.assert_array_equal(on.i, off.i)
        np.testing.assert_array_equal(on.j, off.j)
        assert on.tca_s.tobytes() == off.tca_s.tobytes()
        assert on.pca_km.tobytes() == off.pca_km.tobytes()
        assert on.candidates_refined == off.candidates_refined
        assert on.n_conjunctions > 0  # the scenario must actually detect

    def test_pairs_emitted_counter_matches_coherence_off(self, coherence_population):
        """The funnel's emission volume is coherence-invariant: a replayed
        pair still counts as emitted."""
        counts = {}
        for use in (True, False):
            metrics = MetricsRegistry()
            screen(
                coherence_population,
                _config("fp64", "sorted", use_coherence=use),
                method="grid", backend="vectorized", metrics=metrics,
            )
            counts[use] = metrics.counter("cd.pairs_emitted").value
        assert counts[True] == counts[False] > 0

    def test_hit_rate_exposed_and_probes_reduced(self, coherence_population):
        metrics = MetricsRegistry()
        screen(
            coherence_population, _config("fp64", "sorted"),
            method="grid", backend="vectorized", metrics=metrics,
        )
        assert metrics.counter("cd.coherent_steps").value > 0
        assert 0.0 < metrics.gauge("cd.coherence_hit_rate").value <= 1.0
        # The whole point: fewer neighbour probes than re-probing every
        # occupied cell at every step.
        assert (
            metrics.counter("cd.probes").value
            < metrics.counter("cd.probes_full_equiv").value
        )


def _step_pair_set(grid):
    ci, cj = grid.candidate_pairs()
    return set(zip(ci.tolist(), cj.tolist()))


def _emitter_pair_set(emitter, grid):
    ci, cj, cs = emitter.round_pairs(grid)
    assert (cs == 0).all()
    return set(zip(ci.tolist(), cj.tolist()))


class TestScriptedBoundaryCrossings:
    """Hand-built position scripts exercising every diff-path branch:
    cells emptying, cells appearing, membership churn inside surviving
    cells, and multi-occupancy (intra-cell) groups."""

    CELL = 10.0

    def _grids(self, positions):
        ids = np.arange(len(positions), dtype=np.int64)
        sg = SortedGrid(self.CELL)
        sg.build(ids, np.asarray(positions, dtype=np.float64))
        hg = VectorHashGrid(self.CELL, capacity=len(positions))
        hg.build(ids, np.asarray(positions, dtype=np.float64))
        return sg, hg

    def test_objects_crossing_cell_boundaries(self):
        # Five objects: 0 and 1 share a cell, 2 is a neighbour, 3 is far
        # away, 4 walks across a cell boundary during the window.
        script = [
            [[1.0, 1, 1], [2.0, 1, 1], [12.0, 1, 1], [300.0, 0, 0], [8.0, 1, 1]],
            # step 1: 4 crosses into the neighbour cell (new adjacency work)
            [[1.0, 1, 1], [2.0, 1, 1], [12.0, 1, 1], [300.0, 0, 0], [11.0, 1, 1]],
            # step 2: nothing moves — the pure replay path
            [[1.0, 1, 1], [2.0, 1, 1], [12.0, 1, 1], [300.0, 0, 0], [11.0, 1, 1]],
            # step 3: 2 leaves its cell (cell vanishes), 3 jumps next to 0
            [[1.0, 1, 1], [2.0, 1, 1], [42.0, 1, 1], [-8.0, 1, 1], [11.0, 1, 1]],
            # step 4: 0 and 1 separate across a boundary (membership churn
            # in a surviving cell)
            [[1.0, 1, 1], [12.5, 1, 1], [42.0, 1, 1], [-8.0, 1, 1], [11.0, 1, 1]],
        ]
        em_s = CoherentPairEmitter(5)
        em_h = CoherentPairEmitter(5)
        for step, positions in enumerate(script):
            sg, hg = self._grids(positions)
            expected = _step_pair_set(sg)
            assert _emitter_pair_set(em_s, sg) == expected, f"sorted step {step}"
            assert _emitter_pair_set(em_h, hg) == expected, f"hashmap step {step}"
        # The quiet step really replayed instead of recomputing.
        assert em_s.stats.pairs_replayed > 0
        assert em_s.stats.coherent_steps == len(script) - 1

    def test_churn_guard_falls_back_to_full_emission(self):
        rng = np.random.default_rng(3)
        em = CoherentPairEmitter(30, rebuild_threshold=0.2)
        for _ in range(4):
            positions = rng.uniform(-200, 200, size=(30, 3))
            sg, _ = self._grids(positions)
            assert _emitter_pair_set(em, sg) == _step_pair_set(sg)
        # Everything moves every step: the guard must keep rebuilding.
        assert em.stats.full_rebuilds == 4
        assert em.stats.coherent_steps == 0

    def test_budget_drop_recovers_correctly(self):
        rng = np.random.default_rng(5)
        base = rng.uniform(-100, 100, size=(20, 3))
        em = CoherentPairEmitter(20, budget_bytes=1)  # nothing fits
        for step in range(4):
            positions = base + 0.5 * step
            sg, _ = self._grids(positions)
            assert _emitter_pair_set(em, sg) == _step_pair_set(sg), step
        assert em.stats.budget_drops > 0
        assert em.stats.coherent_steps == 0  # every step restarts cold

    def test_reset_clears_state(self):
        rng = np.random.default_rng(6)
        positions = rng.uniform(-100, 100, size=(20, 3))
        em = CoherentPairEmitter(20)
        sg, _ = self._grids(positions)
        _emitter_pair_set(em, sg)
        assert em.cache_bytes() > 0
        em.reset()
        assert em._prev_cells is None
        assert _emitter_pair_set(em, sg) == _step_pair_set(sg)


class TestEmissionPrimitives:
    def test_expand_cell_pairs_matches_bruteforce(self):
        rng = np.random.default_rng(11)
        counts = rng.integers(1, 5, size=10).astype(np.int64)
        start = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(np.int64)
        a_cells = np.array([0, 3, 7, 7], dtype=np.int64)
        b_cells = np.array([5, 2, 1, 9], dtype=np.int64)
        pos_i, pos_j, sizes = _expand_cell_pairs(start, counts, a_cells, b_cells)
        expected = set()
        for a, b in zip(a_cells, b_cells):
            for x in range(start[a], start[a] + counts[a]):
                for y in range(start[b], start[b] + counts[b]):
                    expected.add((x, y))
        assert set(zip(pos_i.tolist(), pos_j.tolist())) == expected
        assert sizes.tolist() == (counts[a_cells] * counts[b_cells]).tolist()
        assert int(sizes.sum()) == len(pos_i)

    def test_expand_cell_pairs_empty(self):
        start = np.array([0], dtype=np.int64)
        counts = np.array([3], dtype=np.int64)
        pos_i, pos_j, sizes = _expand_cell_pairs(
            start, counts, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert len(pos_i) == len(pos_j) == len(sizes) == 0

    def test_presence_filter_no_false_negatives(self):
        rng = np.random.default_rng(13)
        keys = rng.integers(0, 2**63, size=500).astype(np.uint64)
        fltr = PresenceFilter(keys)
        assert fltr.maybe_contains(keys).all()
        probes = rng.integers(0, 2**63, size=20_000).astype(np.uint64)
        novel = probes[~np.isin(probes, keys)]
        # ~4 buckets/key -> the filter must reject the bulk of misses.
        assert fltr.maybe_contains(novel).mean() < 0.5
        assert fltr.memory_bytes == fltr.n_buckets
