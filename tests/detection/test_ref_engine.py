"""Differential tests of the convergence-aware batch REF engine.

The batch engine (active-lane compaction + warm-started Kepler solves) is
held against two references:

* the scalar Brent oracle (``ref_engine="scalar"``) — the pre-PR-2
  per-candidate path, driven by :func:`brent_minimize`;
* the fixed-iteration cold-start batch kernel (``tol=None``,
  ``warm_start=False``) — the seed's exact numerics.

Both comparisons must produce the identical kept record set, with TCA/PCA
agreement at the ``config.brent_tol`` scale, on every backend.
"""
from __future__ import annotations

import math

import numpy as np
import pytest

from repro.detection.api import screen
from repro.detection.gridbased import (
    _make_conjmap,
    collect_grid_candidates,
    refine_records,
)
from repro.detection.pca_tca import interval_radii, refine_batch
from repro.detection.types import ScreeningConfig
from repro.orbits.propagation import Propagator
from repro.parallel.backend import PhaseTimer, RefTelemetry
from repro.population.scenarios import megaconstellation
from repro.spatial.grid import cell_size_km

CFG = ScreeningConfig(
    threshold_km=10.0, duration_s=1500.0, seconds_per_sample=2.0,
    hybrid_seconds_per_sample=8.0,
)
CFG_SCALAR = ScreeningConfig(
    threshold_km=10.0, duration_s=1500.0, seconds_per_sample=2.0,
    hybrid_seconds_per_sample=8.0, ref_engine="scalar",
)

#: TCA agreement bounds between independent minimisers.  The scalar Brent
#: stopping rule is *relative* (``tol1 = tol * |x| + 1e-12``), so its
#: minimiser is located to ~brent_tol relative to the TCA magnitude; the
#: rtol term mirrors that, the atol term covers TCAs near zero.
TCA_RTOL = 10.0 * CFG.brent_tol
TCA_ATOL = 10.0 * CFG.brent_tol
#: PCA disagreement is the TCA offset squared through the curvature: with
#: the oracle's relative x-tolerance at TCA ~1e3 s and crossing speeds of
#: ~10 km/s, that is of order 1e-4 km — far below any threshold scale.
PCA_ATOL = 1e-4


@pytest.fixture(scope="module")
def ref_population():
    """A Walker shell whose plane crossings produce a dense candidate load."""
    return megaconstellation(12, 30, 550.0, math.radians(53))


@pytest.fixture(scope="module")
def candidate_records(ref_population):
    """Grid candidates of ``ref_population`` — one shared CD pass."""
    pop = ref_population
    cell = cell_size_km(CFG.threshold_km, CFG.seconds_per_sample)
    times = CFG.sample_times()
    conj = _make_conjmap(len(pop), CFG, "grid", CFG.seconds_per_sample)
    prop = Propagator(pop, solver=CFG.solver)
    ids = np.arange(len(pop), dtype=np.int64)
    conj = collect_grid_candidates(
        prop, ids, times, cell, conj, CFG, "vectorized", PhaseTimer(),
    )
    rec_i, rec_j, rec_step = conj.records()
    assert len(rec_i) > 100, "scenario too sparse to exercise the engine"
    centers = times[rec_step]
    radii = interval_radii(pop, rec_i, rec_j, cell)
    return rec_i, rec_j, centers, radii


def _sorted_conjunctions(result):
    order = np.lexsort((result.tca_s, result.j, result.i))
    return (
        result.i[order],
        result.j[order],
        result.tca_s[order],
        result.pca_km[order],
    )


class TestBatchVsScalarOracle:
    """The batch engine against the per-candidate Brent reference."""

    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_refine_records_matches_oracle(
        self, ref_population, candidate_records, backend
    ):
        rec_i, rec_j, centers, radii = candidate_records
        batch = refine_records(
            ref_population, rec_i, rec_j, centers, radii, CFG, backend
        )
        oracle = refine_records(
            ref_population, rec_i, rec_j, centers, radii, CFG_SCALAR, backend
        )
        np.testing.assert_array_equal(batch[0], oracle[0])
        np.testing.assert_array_equal(batch[1], oracle[1])
        np.testing.assert_allclose(batch[2], oracle[2], rtol=TCA_RTOL, atol=TCA_ATOL)
        np.testing.assert_allclose(batch[3], oracle[3], atol=PCA_ATOL)

    @pytest.mark.parametrize("method", ["grid", "hybrid"])
    @pytest.mark.parametrize("backend", ["serial", "threads", "vectorized"])
    def test_screen_matches_scalar_oracle(self, ref_population, method, backend):
        result = screen(ref_population, CFG, method=method, backend=backend)
        oracle = screen(ref_population, CFG_SCALAR, method=method, backend="serial")
        assert result.n_conjunctions == oracle.n_conjunctions
        bi, bj, btca, bpca = _sorted_conjunctions(result)
        oi, oj, otca, opca = _sorted_conjunctions(oracle)
        np.testing.assert_array_equal(bi, oi)
        np.testing.assert_array_equal(bj, oj)
        np.testing.assert_allclose(btca, otca, rtol=TCA_RTOL, atol=TCA_ATOL)
        np.testing.assert_allclose(bpca, opca, atol=PCA_ATOL)

    def test_oracle_config_only_affects_serial_and_threads(self, ref_population):
        """The vectorized backend always runs the batch engine."""
        batch = screen(ref_population, CFG, method="grid", backend="vectorized")
        scalar_cfg = screen(
            ref_population, CFG_SCALAR, method="grid", backend="vectorized"
        )
        np.testing.assert_array_equal(batch.i, scalar_cfg.i)
        np.testing.assert_array_equal(batch.tca_s, scalar_cfg.tca_s)


class TestBackendBitEquality:
    """The fixed chunk grid makes all backends bit-for-bit identical."""

    @pytest.mark.parametrize("method", ["grid", "hybrid"])
    def test_backends_identical(self, ref_population, method):
        results = [
            screen(ref_population, CFG, method=method, backend=backend)
            for backend in ("serial", "threads", "vectorized")
        ]
        ref = _sorted_conjunctions(results[0])
        for other in results[1:]:
            got = _sorted_conjunctions(other)
            np.testing.assert_array_equal(ref[0], got[0])
            np.testing.assert_array_equal(ref[1], got[1])
            np.testing.assert_array_equal(ref[2], got[2])  # exact, not approx
            np.testing.assert_array_equal(ref[3], got[3])

    def test_thread_count_does_not_change_results(self, ref_population):
        base = screen(ref_population, CFG, method="grid", backend="threads")
        cfg4 = ScreeningConfig(
            threshold_km=CFG.threshold_km, duration_s=CFG.duration_s,
            seconds_per_sample=CFG.seconds_per_sample, n_threads=4,
        )
        alt = screen(ref_population, cfg4, method="grid", backend="threads")
        np.testing.assert_array_equal(
            _sorted_conjunctions(base)[2], _sorted_conjunctions(alt)[2]
        )


class TestAblationModes:
    """Compaction and warm starts must not change what is kept."""

    def test_all_modes_keep_identical_records(
        self, ref_population, candidate_records
    ):
        rec_i, rec_j, centers, radii = candidate_records
        base_keep, base_tca, base_pca = refine_batch(
            ref_population, rec_i, rec_j, centers, radii, CFG.threshold_km,
            tol=None, warm_start=False,
        )
        assert len(base_keep) > 0
        for tol, warm in ((None, True), (CFG.brent_tol, False), (CFG.brent_tol, True)):
            keep, tca, pca = refine_batch(
                ref_population, rec_i, rec_j, centers, radii, CFG.threshold_km,
                tol=tol, warm_start=warm,
            )
            np.testing.assert_array_equal(keep, base_keep), (tol, warm)
            np.testing.assert_allclose(tca, base_tca, rtol=TCA_RTOL, atol=TCA_ATOL)
            np.testing.assert_allclose(pca, base_pca, atol=PCA_ATOL)

    def test_fixed_cold_mode_is_deterministic(
        self, ref_population, candidate_records
    ):
        rec_i, rec_j, centers, radii = candidate_records
        runs = [
            refine_batch(
                ref_population, rec_i, rec_j, centers, radii, CFG.threshold_km,
                tol=None, warm_start=False,
            )
            for _ in range(2)
        ]
        np.testing.assert_array_equal(runs[0][0], runs[1][0])
        np.testing.assert_array_equal(runs[0][1], runs[1][1])


class TestRefTelemetry:
    """The engine's work counters must reflect what actually ran."""

    def test_compaction_saves_kepler_iterations(
        self, ref_population, candidate_records
    ):
        rec_i, rec_j, centers, radii = candidate_records
        tele = RefTelemetry()
        refine_batch(
            ref_population, rec_i, rec_j, centers, radii, CFG.threshold_km,
            tol=CFG.brent_tol, warm_start=True, telemetry=tele,
        )
        assert tele.lanes_total == len(rec_i)
        assert tele.golden_iterations > 0
        assert sum(tele.lanes_retired_per_iteration) == len(rec_i)
        # Warm starts cut the mean Kepler iteration count well below the
        # fixed baseline's 10.
        assert 0 < tele.mean_kepler_iterations < 6.0
        assert tele.kepler_iterations_saved > 0

    def test_cold_fixed_mode_reports_baseline_iterations(
        self, ref_population, candidate_records
    ):
        rec_i, rec_j, centers, radii = candidate_records
        tele = RefTelemetry()
        refine_batch(
            ref_population, rec_i, rec_j, centers, radii, CFG.threshold_km,
            tol=None, warm_start=False, telemetry=tele,
        )
        assert tele.mean_kepler_iterations == pytest.approx(
            RefTelemetry.FIXED_BASELINE_KEPLER_ITERS
        )

    @pytest.mark.parametrize("method", ["grid", "hybrid"])
    def test_screen_exposes_ref_telemetry(self, ref_population, method):
        result = screen(ref_population, CFG, method=method, backend="vectorized")
        tele = result.extra["ref_telemetry"]
        # The hybrid variant refines non-coplanar pairs through the scalar
        # node-window scan, so its REF work may be Brent calls rather than
        # batch lanes — but some refinement work must always be recorded.
        assert tele["lanes_total"] + tele["brent_calls"] > 0
        if tele["lanes_total"]:
            assert tele["golden_iterations"] > 0
        assert result.timers.ref.lanes_total == tele["lanes_total"]

    def test_scalar_oracle_records_brent_calls(self, ref_population):
        result = screen(ref_population, CFG_SCALAR, method="grid", backend="serial")
        tele = result.extra["ref_telemetry"]
        assert tele["brent_calls"] > 0
        assert tele["brent_iterations"] >= tele["brent_calls"]

    def test_merge_accumulates(self):
        a = RefTelemetry()
        a.record_lanes(10)
        a.record_golden_iteration(4)
        a.record_kepler(10, 30)
        b = RefTelemetry()
        b.record_lanes(5)
        b.record_golden_iteration(5)
        b.record_golden_iteration(0)
        b.record_kepler(5, 50)
        b.record_brent(7)
        a.merge(b)
        assert a.lanes_total == 15
        assert a.golden_iterations == 3
        # Element-wise by iteration index: [4] + [5, 0] -> [9, 0].
        assert a.lanes_retired_per_iteration == [9, 0]
        assert a.kepler_lanes == 15
        assert a.kepler_iterations == 80
        assert a.brent_calls == 1
        assert a.brent_iterations == 7
        assert a.mean_kepler_iterations == pytest.approx(80 / 15)

    def test_merge_is_order_insensitive(self):
        """Chunk arrival order must not change the merged telemetry."""

        def chunks():
            out = []
            for retired in ([3, 2, 1], [4, 4], [1]):
                t = RefTelemetry()
                t.record_lanes(sum(retired))
                for r in retired:
                    t.record_golden_iteration(r)
                t.record_kepler(sum(retired), 2 * sum(retired))
                out.append(t)
            return out

        forward = RefTelemetry()
        for t in chunks():
            forward.merge(t)
        backward = RefTelemetry()
        for t in reversed(chunks()):
            backward.merge(t)
        assert forward.as_dict() == backward.as_dict()
        assert forward.lanes_retired_per_iteration == [8, 6, 1]


class TestConfigValidation:
    def test_ref_engine_values(self):
        ScreeningConfig(ref_engine="batch")
        ScreeningConfig(ref_engine="scalar")
        with pytest.raises(ValueError, match="ref_engine"):
            ScreeningConfig(ref_engine="simd")

    def test_empty_record_set(self, ref_population):
        e = np.empty(0, dtype=np.int64)
        f = np.empty(0, dtype=np.float64)
        out = refine_records(ref_population, e, e, f, f, CFG, "serial")
        assert all(len(x) == 0 for x in out)
