"""Differential tests: fused-round vectorized collection vs per-step loops.

The serial (and per-step vectorized) loop is the reference semantics; the
fused path — one multi-step grid build and one conjunction-map batch merge
per round — must emit the *identical* deduplicated record set for every
round size, including ones that do not divide the step count.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.detection.gridbased import _make_conjmap, collect_grid_candidates
from repro.detection.types import ScreeningConfig
from repro.orbits.propagation import Propagator
from repro.parallel.backend import PhaseTimer
from repro.population.generator import generate_population
from repro.spatial.grid import cell_size_km


def _collect(pop, cfg, backend, **kwargs):
    cell = cell_size_km(cfg.threshold_km, cfg.seconds_per_sample)
    times = cfg.sample_times()
    conj = _make_conjmap(len(pop), cfg, "grid", cfg.seconds_per_sample)
    propagator = Propagator(pop, solver=cfg.solver)
    ids = np.arange(len(pop), dtype=np.int64)
    result = collect_grid_candidates(
        propagator, ids, times, cell, conj, cfg, backend, PhaseTimer(), **kwargs
    )
    i, j, s = result.records()
    return set(zip(i.tolist(), j.tolist(), s.tolist()))


class TestFusedRoundDifferential:
    @pytest.fixture(scope="class")
    def pop(self):
        return generate_population(250, seed=17)

    @pytest.fixture(scope="class")
    def cfg(self):
        return ScreeningConfig(threshold_km=10.0, duration_s=600.0, seconds_per_sample=2.0)

    @pytest.fixture(scope="class")
    def serial_records(self, pop, cfg):
        return _collect(pop, cfg, "serial")

    @pytest.mark.parametrize("round_size", [1, 7, 16, 301])
    def test_fused_matches_serial_reference(self, pop, cfg, serial_records, round_size):
        """round sizes: degenerate (1), non-dividing (7), default-ish (16),
        larger than the step count (301 > 301 steps clamps to all steps)."""
        fused = _collect(pop, cfg, "vectorized", round_size=round_size)
        assert fused == serial_records

    def test_fused_matches_per_step_vectorized(self, pop, cfg):
        fused = _collect(pop, cfg, "vectorized", round_size=16)
        per_step = _collect(pop, cfg, "vectorized", fused=False, round_size=16)
        assert fused == per_step

    def test_fused_hashmap_impl_matches(self, pop, serial_records):
        cfg = ScreeningConfig(
            threshold_km=10.0, duration_s=600.0, seconds_per_sample=2.0,
            grid_impl="hashmap",
        )
        fused = _collect(pop, cfg, "vectorized", round_size=11)
        assert fused == serial_records

    def test_fused_matches_threads(self, pop, cfg, serial_records):
        threads = _collect(pop, cfg, "threads")
        assert threads == serial_records
