"""Differential suite for the pipelined INS → CD → REF schedule.

``schedule="pipelined"`` must produce **byte-identical** conjunction
records to the barrier schedule — same i/j arrays, same TCA/PCA bit
patterns — across grid implementations, consumer placements, precisions,
and executors.  Plus the queue semantics that make the overlap safe:
bounded depth with producer backpressure, and clean error propagation
out of a mid-round REF failure.
"""
from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.detection.api import screen
from repro.detection.gridbased import screen_grid
from repro.detection.hybrid import screen_hybrid
from repro.detection.pipeline import CandidateQueue, PipelineBrokenError
from repro.detection.types import ScreeningConfig
from repro.orbits.elements import OrbitalElementsArray
from repro.population.generator import generate_population


@pytest.fixture(scope="module")
def dense_population() -> OrbitalElementsArray:
    """Twin constellation + phase-shifted copy: thousands of conjunctions."""
    base = generate_population(40, seed=7)
    shifted = generate_population(40, seed=7)
    shifted.m0[:] = shifted.m0 + 1.3e-3
    return OrbitalElementsArray.concatenate([base, base, shifted])


def _cfg(**kw) -> ScreeningConfig:
    defaults = dict(
        threshold_km=5.0, duration_s=120.0, seconds_per_sample=0.5,
        hybrid_seconds_per_sample=4.0,
    )
    defaults.update(kw)
    return ScreeningConfig(**defaults)


def _assert_identical(ref, res) -> None:
    np.testing.assert_array_equal(ref.i, res.i)
    np.testing.assert_array_equal(ref.j, res.j)
    assert ref.tca_s.tobytes() == res.tca_s.tobytes()
    assert ref.pca_km.tobytes() == res.pca_km.tobytes()
    assert ref.candidates_refined == res.candidates_refined


class TestGridByteIdentity:
    @pytest.mark.parametrize("grid_impl", ["sorted", "hashmap"])
    @pytest.mark.parametrize("consumer", ["inline", "thread"])
    @pytest.mark.parametrize("precision", ["fp64", "mixed"])
    def test_matches_barrier(self, dense_population, grid_impl, consumer, precision):
        barrier = screen_grid(
            dense_population, _cfg(grid_impl=grid_impl, precision=precision)
        )
        assert barrier.n_conjunctions > 100  # the scenario is actually dense
        piped = screen_grid(
            dense_population,
            _cfg(grid_impl=grid_impl, precision=precision,
                 schedule="pipelined", pipeline_consumer=consumer),
        )
        _assert_identical(barrier, piped)
        assert piped.extra["schedule"] == "pipelined"
        stats = piped.extra["pipeline"]
        assert stats["consumer"] == consumer
        assert stats["records"] == piped.candidates_refined
        assert stats["rounds"] >= 1

    def test_empty_sky_pipelines_cleanly(self):
        quiet = generate_population(20, seed=3)
        barrier = screen_grid(quiet, _cfg(threshold_km=0.001))
        piped = screen_grid(
            quiet, _cfg(threshold_km=0.001, schedule="pipelined")
        )
        _assert_identical(barrier, piped)


class TestHybridByteIdentity:
    @pytest.mark.parametrize("consumer", ["inline", "thread"])
    @pytest.mark.parametrize("precision", ["fp64", "mixed"])
    def test_matches_barrier(self, dense_population, consumer, precision):
        barrier = screen_hybrid(dense_population, _cfg(precision=precision))
        assert barrier.n_conjunctions > 50
        piped = screen_hybrid(
            dense_population,
            _cfg(precision=precision, schedule="pipelined",
                 pipeline_consumer=consumer),
        )
        _assert_identical(barrier, piped)
        # The one-pass-per-fresh-pair filter accounting must agree with
        # the barrier's whole-population filter pass, stage for stage.
        assert piped.filter_stats == barrier.filter_stats
        assert piped.extra["grid_pairs"] == barrier.extra["grid_pairs"]
        assert piped.extra["filtered_pairs"] == barrier.extra["filtered_pairs"]
        assert piped.extra["coplanar_pairs"] == barrier.extra["coplanar_pairs"]

    def test_funnel_stays_consistent(self, dense_population):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        result = screen_hybrid(
            dense_population, _cfg(schedule="pipelined"), metrics=metrics
        )
        funnel = metrics.funnels["screen"]
        assert funnel.check() == []
        assert funnel.stages[-1].n_out == result.n_conjunctions


class TestMultideviceComposition:
    def test_serial_sharding_matches_barrier(self, dense_population):
        from repro.parallel.multidevice import screen_grid_multidevice

        barrier, _ = screen_grid_multidevice(
            dense_population, _cfg(), n_devices=3, executor="serial",
            round_size=16,
        )
        piped, reports = screen_grid_multidevice(
            dense_population, _cfg(schedule="pipelined"), n_devices=3,
            executor="serial", round_size=16,
        )
        _assert_identical(barrier, piped)
        assert piped.extra["schedule"] == "pipelined"
        assert len(reports) == 3

    def test_processes_sharding_matches_barrier(self, dense_population):
        from repro.parallel.multidevice import screen_grid_multidevice

        cfg = _cfg(duration_s=60.0)
        barrier, _ = screen_grid_multidevice(
            dense_population, cfg, n_devices=2, executor="processes",
            round_size=16,
        )
        piped, _ = screen_grid_multidevice(
            dense_population,
            _cfg(duration_s=60.0, schedule="pipelined"),
            n_devices=2, executor="processes", round_size=16,
        )
        _assert_identical(barrier, piped)

    def test_shard_matches_single_device(self, dense_population):
        from repro.parallel.multidevice import screen_grid_multidevice

        single = screen_grid(dense_population, _cfg(schedule="pipelined"))
        sharded, _ = screen_grid_multidevice(
            dense_population, _cfg(schedule="pipelined"), n_devices=3,
            executor="serial", round_size=16,
        )
        np.testing.assert_array_equal(single.i, sharded.i)
        np.testing.assert_array_equal(single.j, sharded.j)
        assert single.tca_s.tobytes() == sharded.tca_s.tobytes()
        assert single.pca_km.tobytes() == sharded.pca_km.tobytes()


class TestCandidateQueue:
    def test_fifo_and_close_drains(self):
        q = CandidateQueue(4)
        q.put(("a",))
        q.put(("b",))
        q.close()
        assert q.get() == ("a",)
        assert q.get() == ("b",)
        assert q.get() is None  # closed and drained

    def test_put_blocks_until_consumer_drains(self):
        q = CandidateQueue(1)
        q.put(("first",))
        unblocked = threading.Event()

        def producer():
            q.put(("second",))  # must block: queue is full
            unblocked.set()

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        time.sleep(0.05)
        assert not unblocked.is_set()  # still backpressured
        assert q.get() == ("first",)
        t.join(timeout=5.0)
        assert unblocked.is_set()
        assert q.backpressure_waits == 1
        assert q.peak_depth == 1

    def test_broken_queue_wakes_blocked_producer(self):
        q = CandidateQueue(1)
        q.put(("pending",))
        raised = []

        def producer():
            try:
                q.put(("stuck",))
            except PipelineBrokenError:
                raised.append(True)

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        time.sleep(0.05)
        q.mark_broken()  # consumer died mid-REF
        t.join(timeout=5.0)
        assert raised == [True]
        with pytest.raises(PipelineBrokenError):
            q.put(("later",))

    def test_depth_validation(self):
        with pytest.raises(ValueError, match="max_rounds"):
            CandidateQueue(0)


class TestBackpressureEndToEnd:
    def test_depth_one_queue_still_byte_identical(self, dense_population):
        barrier = screen_grid(dense_population, _cfg())
        piped = screen_grid(
            dense_population,
            _cfg(schedule="pipelined", pipeline_queue_rounds=1),
        )
        _assert_identical(barrier, piped)
        stats = piped.extra["pipeline"]
        assert stats["queue_capacity_rounds"] == 1
        assert stats["queue_peak_rounds"] <= 1  # the bound actually held


class TestConsumerFailure:
    @pytest.mark.parametrize("consumer", ["inline", "thread"])
    def test_mid_round_ref_error_propagates(
        self, dense_population, monkeypatch, consumer
    ):
        """A REF failure on the consumer thread must surface as the
        original exception in the caller — not a deadlock on a full
        queue, not a swallowed PipelineBrokenError."""
        import repro.detection.pipeline as pipeline_mod

        calls = {"n": 0}
        real = pipeline_mod.refine_batch

        def poisoned(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] >= 2:  # let the first chunk through, die mid-stream
                raise RuntimeError("injected REF failure")
            return real(*args, **kwargs)

        monkeypatch.setattr(pipeline_mod, "refine_batch", poisoned)
        with pytest.raises(RuntimeError, match="injected REF failure"):
            screen_grid(
                dense_population,
                _cfg(schedule="pipelined", pipeline_consumer=consumer,
                     pipeline_queue_rounds=1),
            )

    def test_failure_leaves_no_consumer_thread(self, dense_population, monkeypatch):
        import repro.detection.pipeline as pipeline_mod

        def always_fails(*args, **kwargs):
            raise RuntimeError("injected REF failure")

        monkeypatch.setattr(pipeline_mod, "refine_batch", always_fails)
        before = threading.active_count()
        with pytest.raises(RuntimeError, match="injected REF failure"):
            screen_grid(dense_population, _cfg(schedule="pipelined"))
        assert threading.active_count() == before


class TestConfigValidation:
    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="schedule"):
            ScreeningConfig(schedule="overlapped")

    def test_pipelined_with_smart_sieve_rejected(self):
        with pytest.raises(ValueError, match="sieve"):
            ScreeningConfig(schedule="pipelined", use_smart_sieve=True)

    def test_queue_depth_validated(self):
        with pytest.raises(ValueError, match="pipeline_queue_rounds"):
            ScreeningConfig(pipeline_queue_rounds=0)

    def test_consumer_placement_validated(self):
        with pytest.raises(ValueError, match="pipeline_consumer"):
            ScreeningConfig(pipeline_consumer="process")

    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_non_vectorized_backends_rejected(self, dense_population, backend):
        with pytest.raises(ValueError, match="vectorized"):
            screen_grid(
                dense_population, _cfg(schedule="pipelined"), backend=backend
            )

    @pytest.mark.parametrize("method", ["legacy", "kdtree"])
    def test_api_rejects_barrier_only_methods(self, dense_population, method):
        with pytest.raises(ValueError, match="barrier-only"):
            screen(dense_population, _cfg(schedule="pipelined"), method=method)


class TestObservability:
    def test_pipeline_counters_and_queue_pricing(self, dense_population):
        from repro.obs import MetricsRegistry
        from repro.perfmodel.memory import pipeline_queue_bytes

        metrics = MetricsRegistry()
        result = screen_grid(
            dense_population, _cfg(schedule="pipelined"), metrics=metrics
        )
        snap = metrics.as_dict()["counters"]
        stats = result.extra["pipeline"]
        assert snap["pipeline.rounds"] == stats["rounds"]
        assert snap["pipeline.records_streamed"] == stats["records"]
        assert snap["pipeline.ref_chunks"] == stats["ref_chunks"]
        assert result.extra["pipeline_queue_bytes"] > 0
        # Priced by the same model the stream planner charges.
        assert result.extra["pipeline_queue_bytes"] == pipeline_queue_bytes(
            len(dense_population), 0.5, 120.0, 5.0, "grid",
            result.extra.get("round_size") or 16, 2,
        )

    def test_spans_land_on_separate_threads(self, dense_population):
        """INS (prefetch thread), CD (main), REF (consumer thread) must
        trace as distinct tracks — the structural fact the overlap report
        quantifies."""
        from repro.obs import Tracer

        tracer = Tracer()
        screen_grid(
            dense_population,
            _cfg(schedule="pipelined", pipeline_consumer="thread"),
            tracer=tracer,
        )
        thread_of = {}
        for name in ("phase:INS", "phase:CD", "phase:REF"):
            spans = tracer.spans(name)
            assert spans, f"no {name} spans traced"
            thread_of[name] = {s.thread for s in spans}
        # The chunk refinement streams on the consumer thread (the final
        # merge_conjunctions legitimately stays on the main thread).
        assert thread_of["phase:REF"] - thread_of["phase:CD"], (
            "no REF span ever ran off the main thread — the consumer is "
            "not actually draining on its own track"
        )
        assert thread_of["phase:INS"] - thread_of["phase:CD"], (
            "no INS span ever ran off the main thread — the producer "
            "prefetch is not overlapping"
        )
