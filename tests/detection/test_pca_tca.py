"""PCA/TCA refinement: scalar vs batch, edge-probe rule, merging."""
from __future__ import annotations

import math

import numpy as np
import pytest

from repro.detection.pca_tca import (
    BatchPairDistance,
    PairDistanceScalar,
    interval_radii,
    merge_conjunctions,
    refine_batch,
    refine_candidate,
)
from repro.orbits.elements import KeplerElements, OrbitalElementsArray
from repro.orbits.propagation import Propagator


class TestPairDistance:
    def test_scalar_matches_propagator(self, crossing_pair):
        pop = crossing_pair
        dist = PairDistanceScalar(pop, 0, 1)
        prop = Propagator(pop)
        for t in (0.0, 123.4, 5000.0):
            pos = prop.positions(t)
            expected = float(np.linalg.norm(pos[0] - pos[1]))
            assert dist(t) == pytest.approx(expected, abs=1e-6)

    def test_batch_matches_scalar(self, crossing_pair):
        pop = crossing_pair
        batch = BatchPairDistance(pop, np.array([0, 0]), np.array([1, 1]))
        scalar = PairDistanceScalar(pop, 0, 1)
        t = np.array([10.0, 2914.0])
        d = batch(t)
        assert d[0] == pytest.approx(scalar(10.0), abs=1e-6)
        assert d[1] == pytest.approx(scalar(2914.0), abs=1e-6)


class TestRefineCandidate:
    def test_finds_known_conjunction(self, crossing_pair):
        dist = PairDistanceScalar(crossing_pair, 0, 1)
        hit = refine_candidate(dist, center=1.0, radius=20.0, threshold_km=5.0)
        assert hit is not None
        tca, pca = hit
        assert pca == pytest.approx(1.22, abs=0.01)
        assert abs(tca) < 5.0

    def test_rejects_above_threshold(self, crossing_pair):
        dist = PairDistanceScalar(crossing_pair, 0, 1)
        assert refine_candidate(dist, center=1.0, radius=20.0, threshold_km=0.5) is None

    def test_discards_edge_minimum_still_descending(self, crossing_pair):
        # Interval far to the left of the t~0 minimum: distance is
        # descending toward the right edge, so the candidate is discarded
        # (the neighbouring interval owns the true minimum).
        dist = PairDistanceScalar(crossing_pair, 0, 1)
        hit = refine_candidate(dist, center=-60.0, radius=20.0, threshold_km=1e9)
        assert hit is None

    def test_validation(self, crossing_pair):
        dist = PairDistanceScalar(crossing_pair, 0, 1)
        with pytest.raises(ValueError):
            refine_candidate(dist, 0.0, 0.0, 2.0)


class TestIntervalRadii:
    def test_uses_slower_member(self):
        fast = KeplerElements(a=6800.0, e=0.0, i=0.1, raan=0, argp=0, m0=0)
        slow = KeplerElements(a=42000.0, e=0.0, i=0.1, raan=0, argp=0, m0=0)
        pop = OrbitalElementsArray.from_elements([fast, slow])
        radii = interval_radii(pop, np.array([0]), np.array([1]), cell_size_km=10.0)
        from repro.constants import MU_EARTH

        v_slow = math.sqrt(MU_EARTH / 42000.0)
        assert radii[0] == pytest.approx(2 * 10.0 / v_slow, rel=1e-9)

    def test_radius_covers_half_sample_step(self, small_population):
        """The refinement interval must at least span half the sampling
        step, or minima between samples could escape (Section IV-C)."""
        from repro.spatial.grid import cell_size_km

        pop = small_population
        sps = 1.0
        cell = cell_size_km(2.0, sps)
        rng = np.random.default_rng(0)
        i = rng.integers(0, len(pop), 50)
        j = (i + 1) % len(pop)
        radii = interval_radii(pop, i, j, cell)
        assert (radii >= sps / 2).all()


class TestRefineBatch:
    def test_matches_scalar_refinement(self, crossing_pair):
        pop = crossing_pair
        pair_i = np.array([0])
        pair_j = np.array([1])
        centers = np.array([1.0])
        radii = np.array([20.0])
        keep, tca, pca = refine_batch(pop, pair_i, pair_j, centers, radii, threshold_km=5.0)
        assert keep.tolist() == [0]
        dist = PairDistanceScalar(pop, 0, 1)
        scalar_hit = refine_candidate(dist, 1.0, 20.0, 5.0)
        assert tca[0] == pytest.approx(scalar_hit[0], abs=1e-3)
        assert pca[0] == pytest.approx(scalar_hit[1], abs=1e-6)

    def test_empty_batch(self, crossing_pair):
        keep, tca, pca = refine_batch(
            crossing_pair,
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0),
            np.empty(0),
            2.0,
        )
        assert len(keep) == 0

    def test_edge_discard_in_batch(self, crossing_pair):
        # Same far-left interval as the scalar test: must be discarded even
        # with an infinite threshold.
        keep, _, _ = refine_batch(
            crossing_pair,
            np.array([0]),
            np.array([1]),
            np.array([-60.0]),
            np.array([20.0]),
            threshold_km=1e9,
        )
        assert len(keep) == 0


class TestMergeConjunctions:
    def test_merges_close_tcas_keeps_min_pca(self):
        i = np.array([1, 1, 1])
        j = np.array([2, 2, 2])
        tca = np.array([10.0, 10.02, 500.0])
        pca = np.array([1.5, 1.2, 0.9])
        mi, mj, mt, mp = merge_conjunctions(i, j, tca, pca, tol_s=0.05)
        assert len(mt) == 2
        assert mp.tolist() == [1.2, 0.9]
        assert mt[0] == pytest.approx(10.02)

    def test_different_pairs_not_merged(self):
        i = np.array([1, 3])
        j = np.array([2, 4])
        tca = np.array([10.0, 10.0])
        pca = np.array([1.0, 1.0])
        mi, mj, mt, mp = merge_conjunctions(i, j, tca, pca, tol_s=1.0)
        assert len(mt) == 2

    def test_chained_merging(self):
        # 10.0, 10.04, 10.08: each within tol of the previous -> one cluster.
        i = np.array([1, 1, 1])
        j = np.array([2, 2, 2])
        tca = np.array([10.0, 10.04, 10.08])
        pca = np.array([3.0, 2.0, 2.5])
        _, _, mt, mp = merge_conjunctions(i, j, tca, pca, tol_s=0.05)
        assert len(mt) == 1
        assert mp[0] == 2.0

    def test_empty_input(self):
        e = np.empty(0, dtype=np.int64)
        f = np.empty(0)
        out = merge_conjunctions(e, e, f, f, 0.05)
        assert all(len(x) == 0 for x in out)
