"""Window scanning shared by legacy and hybrid."""
from __future__ import annotations

import numpy as np
import pytest

from repro.detection.scan import scan_pair_windows


def test_finds_both_known_minima(crossing_pair):
    hits = scan_pair_windows(crossing_pair, 0, 1, [(0.0, 6000.0)], threshold_km=5.0)
    tcas = sorted(t for t, _ in hits)
    assert len(tcas) == 2
    assert abs(tcas[0]) < 2.0
    assert tcas[1] == pytest.approx(2914.5, abs=1.0)


def test_respects_threshold(crossing_pair):
    hits = scan_pair_windows(crossing_pair, 0, 1, [(0.0, 6000.0)], threshold_km=2.0)
    assert len(hits) == 1  # only the 1.22 km minimum passes a 2 km threshold
    assert hits[0][1] == pytest.approx(1.22, abs=0.01)


def test_window_clipping_still_finds_edge_minimum(crossing_pair):
    # Window ends right after the minimum: the boundary bracket logic must
    # still catch it.
    hits = scan_pair_windows(crossing_pair, 0, 1, [(2900.0, 2915.0)], threshold_km=5.0)
    assert len(hits) == 1
    assert hits[0][0] == pytest.approx(2914.5, abs=1.0)


def test_empty_and_degenerate_windows(crossing_pair):
    assert scan_pair_windows(crossing_pair, 0, 1, [], 5.0) == []
    assert scan_pair_windows(crossing_pair, 0, 1, [(10.0, 10.0)], 5.0) == []


def test_duplicate_minima_from_overlapping_windows_merged(crossing_pair):
    hits = scan_pair_windows(
        crossing_pair, 0, 1, [(-30.0, 30.0), (-20.0, 40.0)], threshold_km=5.0
    )
    assert len(hits) == 1
