"""ScreeningConfig validation and ScreeningResult helpers."""
from __future__ import annotations

import numpy as np
import pytest

from repro.detection.types import Conjunction, ScreeningConfig, ScreeningResult, empty_result
from repro.parallel.backend import PhaseTimer


class TestConfig:
    def test_defaults_are_the_papers(self):
        cfg = ScreeningConfig()
        assert cfg.threshold_km == 2.0
        assert cfg.hybrid_seconds_per_sample == 9.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(threshold_km=0.0),
            dict(duration_s=-1.0),
            dict(seconds_per_sample=0.0),
            dict(hybrid_seconds_per_sample=0.0),
            dict(grid_impl="octree"),
            dict(legacy_samples_per_period=2),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ScreeningConfig(**kwargs)

    def test_sample_times(self):
        cfg = ScreeningConfig(duration_s=10.0, seconds_per_sample=2.0)
        times = cfg.sample_times()
        np.testing.assert_allclose(times, [0, 2, 4, 6, 8, 10])
        times_h = cfg.sample_times(5.0)
        np.testing.assert_allclose(times_h, [0, 5, 10])

    def test_sample_times_cover_duration(self):
        cfg = ScreeningConfig(duration_s=10.0, seconds_per_sample=3.0)
        times = cfg.sample_times()
        assert times[-1] >= 10.0

    def test_frozen(self):
        cfg = ScreeningConfig()
        with pytest.raises(AttributeError):
            cfg.threshold_km = 5.0


class TestResult:
    def _result(self):
        return ScreeningResult(
            method="grid",
            backend="serial",
            i=np.array([1, 1, 3]),
            j=np.array([2, 2, 4]),
            tca_s=np.array([30.0, 10.0, 20.0]),
            pca_km=np.array([1.0, 0.5, 1.5]),
            candidates_refined=7,
            timers=PhaseTimer(),
        )

    def test_unique_pairs(self):
        assert self._result().unique_pairs() == {(1, 2), (3, 4)}

    def test_conjunctions_sorted_by_tca(self):
        conjs = self._result().conjunctions()
        assert [c.tca_s for c in conjs] == [10.0, 20.0, 30.0]
        assert conjs[0] == Conjunction(1, 2, 10.0, 0.5)

    def test_summary_contains_counts(self):
        s = self._result().summary()
        assert "3 conjunctions" in s
        assert "2 pairs" in s
        assert "7 candidates" in s

    def test_empty_result(self):
        r = empty_result("grid", "serial")
        assert r.n_conjunctions == 0
        assert r.unique_pairs() == set()
        assert r.conjunctions() == []
