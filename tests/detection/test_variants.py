"""End-to-end tests of the three screening variants and their agreement."""
from __future__ import annotations

import math

import numpy as np
import pytest

from repro.detection.api import screen
from repro.detection.types import ScreeningConfig
from repro.orbits.elements import KeplerElements, OrbitalElementsArray
from repro.population.generator import generate_population
from repro.population.scenarios import megaconstellation

CFG = ScreeningConfig(
    threshold_km=5.0, duration_s=6000.0, seconds_per_sample=1.0, hybrid_seconds_per_sample=9.0
)


class TestKnownScenario:
    """The engineered crossing pair has exactly two conjunctions below 5 km:
    PCA ~1.22 km near t=0 and PCA ~4.13 km near t=2914.5 s."""

    @pytest.mark.parametrize(
        "method, backend",
        [
            ("grid", "vectorized"),
            ("grid", "serial"),
            ("grid", "threads"),
            ("hybrid", "vectorized"),
            ("hybrid", "serial"),
            ("hybrid", "threads"),
            ("legacy", "serial"),
        ],
    )
    def test_finds_both_conjunctions(self, crossing_pair, method, backend):
        result = screen(crossing_pair, CFG, method=method, backend=backend)
        assert result.n_conjunctions == 2, result.summary()
        conjs = result.conjunctions()
        assert conjs[0].pca_km == pytest.approx(1.22, abs=0.01)
        assert abs(conjs[0].tca_s) < 2.0
        assert conjs[1].pca_km == pytest.approx(4.13, abs=0.02)
        assert conjs[1].tca_s == pytest.approx(2914.5, abs=1.0)

    def test_tight_threshold_drops_far_minimum(self, crossing_pair):
        cfg = ScreeningConfig(threshold_km=2.0, duration_s=6000.0, seconds_per_sample=1.0)
        for method in ("grid", "hybrid", "legacy"):
            result = screen(crossing_pair, cfg, method=method)
            assert result.n_conjunctions == 1, method


class TestPhasedSameOrbit:
    """Two satellites on the same orbit, phased apart: never conjunct."""

    def test_no_conjunctions(self):
        el1 = KeplerElements(a=7000.0, e=0.001, i=0.9, raan=0.5, argp=0.0, m0=0.0)
        el2 = KeplerElements(a=7000.0, e=0.001, i=0.9, raan=0.5, argp=0.0, m0=math.pi)
        pop = OrbitalElementsArray.from_elements([el1, el2])
        for method in ("grid", "hybrid", "legacy"):
            result = screen(pop, CFG, method=method)
            assert result.n_conjunctions == 0, method


class TestTrailingFormation:
    """Two satellites 1 km apart on the same orbit: permanently conjunct —
    a sustained sub-threshold distance rather than isolated minima.  All
    variants must flag the pair (exact event counts may differ because the
    distance curve is nearly flat)."""

    def test_pair_is_flagged(self):
        el1 = KeplerElements(a=7000.0, e=0.0005, i=0.9, raan=0.5, argp=0.0, m0=0.0)
        el2 = KeplerElements(a=7000.0, e=0.0005, i=0.9, raan=0.5, argp=0.0, m0=1.0 / 7000.0)
        pop = OrbitalElementsArray.from_elements([el1, el2])
        cfg = ScreeningConfig(threshold_km=5.0, duration_s=1200.0, seconds_per_sample=1.0)
        for method in ("grid", "hybrid", "legacy"):
            result = screen(pop, cfg, method=method)
            assert (0, 1) in result.unique_pairs(), method


class TestBackendEquivalence:
    @pytest.mark.parametrize("method", ["grid", "hybrid"])
    def test_all_backends_agree_on_population(self, method):
        pop = generate_population(400, seed=11)
        cfg = ScreeningConfig(
            threshold_km=10.0, duration_s=900.0, seconds_per_sample=2.0,
            hybrid_seconds_per_sample=10.0,
        )
        results = {
            b: screen(pop, cfg, method=method, backend=b)
            for b in ("vectorized", "serial", "threads")
        }
        ref_pairs = results["vectorized"].unique_pairs()
        for b, r in results.items():
            assert r.unique_pairs() == ref_pairs, f"{method}/{b}"
        # PCA values agree to refinement accuracy.
        for b in ("serial", "threads"):
            ref = {
                (c.i, c.j, round(c.tca_s, 1)): c.pca_km
                for c in results["vectorized"].conjunctions()
            }
            for c in results[b].conjunctions():
                key = (c.i, c.j, round(c.tca_s, 1))
                if key in ref:
                    assert c.pca_km == pytest.approx(ref[key], abs=1e-3)

    def test_hashmap_grid_impl_equals_sorted(self):
        pop = generate_population(300, seed=13)
        base = ScreeningConfig(threshold_km=10.0, duration_s=600.0, seconds_per_sample=2.0)
        sorted_res = screen(pop, base, method="grid", backend="vectorized")
        hm_cfg = ScreeningConfig(
            threshold_km=10.0, duration_s=600.0, seconds_per_sample=2.0, grid_impl="hashmap"
        )
        hm_res = screen(pop, hm_cfg, method="grid", backend="vectorized")
        assert hm_res.unique_pairs() == sorted_res.unique_pairs()
        assert hm_res.n_conjunctions == sorted_res.n_conjunctions


class TestCrossMethodAgreement:
    def test_grid_hybrid_legacy_same_pairs(self):
        pop = generate_population(600, seed=21)
        cfg = ScreeningConfig(
            threshold_km=5.0, duration_s=1200.0, seconds_per_sample=2.0,
            hybrid_seconds_per_sample=10.0,
        )
        grid = screen(pop, cfg, method="grid")
        hybrid = screen(pop, cfg, method="hybrid")
        legacy = screen(pop, cfg, method="legacy")
        # The hybrid must find every legacy pair (the paper's accuracy
        # result: "the hybrid variant finds all the colliding pairs of the
        # legacy variant").
        assert legacy.unique_pairs() <= hybrid.unique_pairs()
        # Grid may miss at most rare brent-edge cases; none expected here.
        assert legacy.unique_pairs() == grid.unique_pairs()

    def test_constellation_in_shell_screening(self):
        shell = megaconstellation(
            n_planes=12, sats_per_plane=20, altitude_km=550.0,
            inclination_rad=math.radians(53.0),
        )
        cfg = ScreeningConfig(threshold_km=5.0, duration_s=600.0, seconds_per_sample=2.0)
        grid = screen(shell, cfg, method="grid")
        hybrid = screen(shell, cfg, method="hybrid")
        # A well-phased Walker shell has inter-plane crossings but our
        # 5 km threshold flags only real geometric near-misses; whatever is
        # found must agree between methods.
        assert grid.unique_pairs() == hybrid.unique_pairs()


class TestResultMetadata:
    def test_grid_phase_timers_present(self, crossing_pair):
        r = screen(crossing_pair, CFG, method="grid")
        for phase in ("ALLOC", "INS", "CD", "REF"):
            assert phase in r.timers.totals
        assert r.extra["cell_size_km"] == pytest.approx(5.0 + 7.8)

    def test_hybrid_has_filter_stats_and_cop_phase(self, crossing_pair):
        r = screen(crossing_pair, CFG, method="hybrid")
        assert "COP" in r.timers.totals
        assert "apogee_perigee" in r.filter_stats
        assert "orbit_path" in r.filter_stats
        assert r.extra["cell_size_km"] == pytest.approx(5.0 + 7.8 * 9.0)

    def test_legacy_reports_total_pairs(self, crossing_pair):
        r = screen(crossing_pair, CFG, method="legacy")
        assert r.extra["total_pairs"] == 1

    def test_unknown_method_rejected(self, crossing_pair):
        with pytest.raises(ValueError, match="unknown method"):
            screen(crossing_pair, CFG, method="octree")

    def test_unknown_backend_rejected(self, crossing_pair):
        with pytest.raises(ValueError, match="unknown backend"):
            screen(crossing_pair, CFG, method="grid", backend="mpi")

    def test_default_config(self, crossing_pair):
        r = screen(crossing_pair, method="hybrid")
        assert r.method == "hybrid"


class TestSmartSieveIntegration:
    def test_results_unchanged_and_work_reduced(self):
        pop = generate_population(500, seed=41)
        base_cfg = ScreeningConfig(threshold_km=5.0, duration_s=900.0, seconds_per_sample=2.0)
        sieve_cfg = ScreeningConfig(
            threshold_km=5.0, duration_s=900.0, seconds_per_sample=2.0, use_smart_sieve=True
        )
        plain = screen(pop, base_cfg, method="grid", backend="vectorized")
        sieved = screen(pop, sieve_cfg, method="grid", backend="vectorized")
        assert sieved.unique_pairs() == plain.unique_pairs()
        assert sieved.n_conjunctions == plain.n_conjunctions
        # The sieve must actually remove provably-clean records.
        assert sieved.extra["sieved_records"] > 0
        assert sieved.candidates_refined < plain.candidates_refined

    def test_engineered_pair_survives_sieve(self, crossing_pair):
        cfg = ScreeningConfig(
            threshold_km=5.0, duration_s=6000.0, seconds_per_sample=1.0, use_smart_sieve=True
        )
        result = screen(crossing_pair, cfg, method="grid")
        assert result.n_conjunctions == 2


class TestMemoryBudgetedRounds:
    def test_budgeted_grid_run_matches_unbudgeted(self, crossing_pair):
        """Section V-B rounds: a memory budget bounds the parallel steps
        per round without changing any result."""
        base = ScreeningConfig(threshold_km=5.0, duration_s=3000.0, seconds_per_sample=2.0)
        budgeted = ScreeningConfig(
            threshold_km=5.0, duration_s=3000.0, seconds_per_sample=2.0,
            memory_budget_bytes=1 * 2**20,  # 1 MiB: a handful of steps/round
        )
        plain = screen(crossing_pair, base, method="grid", backend="vectorized")
        tight = screen(crossing_pair, budgeted, method="grid", backend="vectorized")
        assert tight.unique_pairs() == plain.unique_pairs()
        assert tight.n_conjunctions == plain.n_conjunctions
        plan = tight.extra["memory_plan"]
        assert plan is not None
        assert plan.parallel_steps >= 1
        assert plain.extra["memory_plan"] is None

    def test_hybrid_budget_can_adjust_sps(self):
        """A hybrid run under a tight budget records its adjusted s_ps."""
        pop = generate_population(300, seed=5)
        cfg = ScreeningConfig(
            threshold_km=2.0, duration_s=3600.0, hybrid_seconds_per_sample=9.0,
            memory_budget_bytes=2 * 2**20,
        )
        result = screen(pop, cfg, method="hybrid", backend="vectorized")
        plan = result.extra["memory_plan"]
        assert plan is not None
        assert result.extra["seconds_per_sample"] == plan.seconds_per_sample
