"""Mixed-precision broad phase: the safety guarantee and its plumbing.

The contract of ``precision="mixed"`` (DESIGN.md §10):

* the float32 broad phase plus the error-bounded cell pad never loses a
  true conjunction — every conjunction the fp64 pipeline reports is
  *covered* by a mixed-mode candidate record (same pair, a sampling step
  whose refinement interval contains the TCA);
* REF still solves in float64 from the float64 elements, so the final
  ``(i, j, tca, pca)`` sets agree across precisions (same pairs and
  counts, TCA/PCA equal to far below the physical tolerance);
* within mixed mode, every backend and both grid implementations emit the
  bit-identical candidate-record set and final conjunction list (the fp32
  positions come from one shared batch kernel, and the cell binning
  preserves their dtype everywhere).

Plus unit coverage of the pieces: the float32 propagation error really is
below the pad budget, the warm-start cache stays float64-authoritative,
the cell pad arithmetic, and the dtype-priced memory plan.
"""
from __future__ import annotations

import math

import numpy as np
import pytest

from repro.constants import SIM_HALF_EXTENT
from repro.detection.api import screen
from repro.detection.gridbased import _make_conjmap, collect_grid_candidates
from repro.detection.types import ScreeningConfig
from repro.obs.metrics import MetricsRegistry
from repro.orbits.propagation import Propagator
from repro.parallel.backend import PhaseTimer
from repro.perfmodel.memory import grid_instance_bytes, plan_memory
from repro.population.generator import generate_population
from repro.population.scenarios import megaconstellation
from repro.spatial.grid import (
    FP32_EPS,
    FP32_ULP_SLACK,
    UniformGrid,
    cell_size_km,
    fp32_cell_pad_km,
)
from repro.spatial.vectorgrid import compute_cell_keys

BASE_CFG = dict(threshold_km=5.0, duration_s=600.0, seconds_per_sample=2.0)


def _scenarios():
    return [
        ("lowdense", generate_population(300, seed=7)),
        ("catalog", generate_population(500, seed=42)),
        ("walker", megaconstellation(6, 25, 550.0, math.radians(53))),
    ]


def _collect_records(population, config):
    """The (i, j, step) candidate-record arrays of one grid collection."""
    cell = cell_size_km(
        config.threshold_km, config.seconds_per_sample, precision=config.precision
    )
    times = config.sample_times()
    conj = _make_conjmap(len(population), config, "grid", config.seconds_per_sample)
    prop = Propagator(population, solver=config.solver, precision=config.precision)
    ids = np.arange(len(population), dtype=np.int64)
    conj = collect_grid_candidates(
        prop, ids, times, cell, conj, config, "vectorized", PhaseTimer()
    )
    return conj.records(), times


class TestPrecisionPolicy:
    def test_config_validates_precision(self):
        assert ScreeningConfig(precision="mixed").precision == "mixed"
        with pytest.raises(ValueError, match="precision"):
            ScreeningConfig(precision="fp32")

    def test_cell_pad_value_and_padding(self):
        pad = fp32_cell_pad_km()
        assert pad == 2.0 * math.sqrt(3.0) * SIM_HALF_EXTENT * FP32_EPS * FP32_ULP_SLACK
        # ~70 m at the 42 500 km half extent: a ~2 % cell inflation.
        assert 0.05 < pad < 0.1
        base = cell_size_km(5.0, 2.0)
        assert cell_size_km(5.0, 2.0, precision="mixed") == base + pad
        with pytest.raises(ValueError, match="precision"):
            cell_size_km(5.0, 2.0, precision="fp32")


class TestFloat32Propagation:
    def test_positions_dtype_and_error_budget(self):
        """Per-axis fp32 error stays below the pad's per-axis allowance."""
        pop = generate_population(400, seed=3)
        p64 = Propagator(pop, precision="fp64")
        p32 = Propagator(pop, precision="mixed")
        times = np.arange(16, dtype=np.float64) * 5.0
        r64 = p64.positions_batch(times)
        r32 = p32.positions_batch(times)
        assert r64.dtype == np.float64
        assert r32.dtype == np.float32
        per_axis_budget = SIM_HALF_EXTENT * FP32_EPS * FP32_ULP_SLACK
        err = np.abs(r32.astype(np.float64) - r64)
        assert float(err.max()) < per_axis_budget

    def test_warm_cache_stays_float64(self):
        pop = generate_population(50, seed=3)
        prop = Propagator(pop, precision="mixed")
        prop.positions_batch(np.array([0.0, 2.0, 4.0]))
        assert prop._warm_E.dtype == np.float64
        assert prop.positions(6.0).dtype == np.float32
        # REF inputs remain float64 regardless of the policy.
        pos, vel = prop.states(6.0)
        assert pos.dtype == np.float64 and vel.dtype == np.float64

    def test_invalid_precision_rejected(self):
        pop = generate_population(10, seed=3)
        with pytest.raises(ValueError, match="precision"):
            Propagator(pop, precision="fp16")


class TestFloat32CellBinning:
    def test_key_computation_preserves_float32(self):
        """Serial UniformGrid and vectorized keys bin fp32 identically."""
        pop = generate_population(300, seed=11)
        prop = Propagator(pop, precision="mixed")
        pos32 = prop.positions(0.0)
        assert pos32.dtype == np.float32
        cell = cell_size_km(5.0, 2.0, precision="mixed")
        vec_keys = compute_cell_keys(pos32, cell)
        grid = UniformGrid(cell, capacity=len(pop))
        serial_keys = grid.cell_keys(pos32)
        np.testing.assert_array_equal(vec_keys, serial_keys)
        # And fp32 binning differs from binning the fp64-cast positions in
        # general; the point is both paths use the SAME arithmetic.
        assert grid.cell_coords(pos32).dtype == np.int64


@pytest.mark.parametrize(
    "name, population", _scenarios(), ids=[s[0] for s in _scenarios()]
)
@pytest.mark.parametrize("grid_impl", ["sorted", "hashmap"])
class TestMixedVsFp64Differential:
    def test_coverage_and_final_sets(self, name, population, grid_impl):
        """Every fp64 conjunction is covered by a mixed candidate record,
        and the post-REF conjunction sets agree across precisions."""
        cfg64 = ScreeningConfig(**BASE_CFG, grid_impl=grid_impl, precision="fp64")
        cfg32 = ScreeningConfig(**BASE_CFG, grid_impl=grid_impl, precision="mixed")

        r64 = screen(population, cfg64, method="grid", backend="vectorized")
        r32 = screen(population, cfg32, method="grid", backend="vectorized")

        # --- candidate coverage of the true conjunctions -------------------
        (mi, mj, mstep), times = _collect_records(population, cfg32)
        sps = cfg32.seconds_per_sample
        mixed_records = set(zip(mi.tolist(), mj.tolist(), mstep.tolist()))
        for a, b, tca in zip(r64.i.tolist(), r64.j.tolist(), r64.tca_s.tolist()):
            nearest = int(round(tca / sps))
            covering = [
                (a, b, s)
                for s in range(max(nearest - 1, 0), min(nearest + 2, len(times)))
                if (a, b, s) in mixed_records
            ]
            assert covering, (
                f"{name}/{grid_impl}: fp64 conjunction ({a}, {b}) at t={tca:.2f}s "
                "has no covering mixed-precision candidate record"
            )

        # --- final-set identity after the shared fp64 REF ------------------
        np.testing.assert_array_equal(r64.i, r32.i)
        np.testing.assert_array_equal(r64.j, r32.j)
        assert r64.n_conjunctions == r32.n_conjunctions
        # Both refinements solve in fp64 over (near-)identical intervals;
        # agreement is far tighter than the 1e-6 s Brent tolerance.
        np.testing.assert_allclose(r32.tca_s, r64.tca_s, atol=1e-4)
        np.testing.assert_allclose(r32.pca_km, r64.pca_km, atol=1e-6)

    def test_mixed_backends_bit_identical(self, name, population, grid_impl):
        """serial and vectorized agree bit-for-bit within mixed mode."""
        cfg = ScreeningConfig(**BASE_CFG, grid_impl=grid_impl, precision="mixed")
        r_vec = screen(population, cfg, method="grid", backend="vectorized")
        r_ser = screen(population, cfg, method="grid", backend="serial")
        np.testing.assert_array_equal(r_vec.i, r_ser.i)
        np.testing.assert_array_equal(r_vec.j, r_ser.j)
        np.testing.assert_array_equal(r_vec.tca_s, r_ser.tca_s)
        np.testing.assert_array_equal(r_vec.pca_km, r_ser.pca_km)


class TestMixedHybridAndMetrics:
    def test_hybrid_mixed_agrees_with_fp64(self):
        pop = generate_population(400, seed=9)
        cfg64 = ScreeningConfig(**BASE_CFG, precision="fp64")
        cfg32 = ScreeningConfig(**BASE_CFG, precision="mixed")
        r64 = screen(pop, cfg64, method="hybrid", backend="vectorized")
        r32 = screen(pop, cfg32, method="hybrid", backend="vectorized")
        np.testing.assert_array_equal(r64.i, r32.i)
        np.testing.assert_array_equal(r64.j, r32.j)
        np.testing.assert_allclose(r32.tca_s, r64.tca_s, atol=1e-4)
        np.testing.assert_allclose(r32.pca_km, r64.pca_km, atol=1e-6)
        assert r32.extra["precision"] == "mixed"
        assert r32.extra["cell_size_km"] == pytest.approx(
            r32.extra["ref_cell_size_km"] + fp32_cell_pad_km()
        )

    def test_metrics_record_active_precision(self):
        pop = generate_population(200, seed=5)
        cfg = ScreeningConfig(**BASE_CFG, precision="mixed")
        metrics = MetricsRegistry()
        screen(pop, cfg, method="grid", backend="vectorized", metrics=metrics)
        assert metrics.counter("screen.precision_mixed").value == 1
        assert metrics.counter("grid.builds_mixed").value > 0
        assert metrics.counter("grid.builds_fp64").value == 0


class TestMixedMemoryPlan:
    def test_mixed_doubles_parallel_steps(self):
        budget = 2 * 2**30
        p64 = plan_memory(100_000, 1.0, 3600.0, 2.0, "grid", budget, auto_adjust=False)
        p32 = plan_memory(
            100_000, 1.0, 3600.0, 2.0, "grid", budget, auto_adjust=False,
            precision="mixed",
        )
        assert p32.precision == "mixed" and p64.precision == "fp64"
        assert p32.per_grid_bytes * 2 == p64.per_grid_bytes
        # Fixed allocations are unchanged, so p a bit more than doubles.
        assert p32.parallel_steps >= 2 * p64.parallel_steps
        assert p32.fixed_bytes == p64.fixed_bytes

    def test_grid_instance_bytes_by_precision(self):
        n = 1000
        assert grid_instance_bytes(n) == 80 * n
        assert grid_instance_bytes(n, "mixed") == 40 * n
        # Default (fp64) result unchanged: the multidevice peak-byte
        # accounting and its tests rely on it.
        assert grid_instance_bytes(n) == grid_instance_bytes(n, "fp64")
