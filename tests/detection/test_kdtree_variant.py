"""Kd-tree screening variant: agreement with the grid variant."""
from __future__ import annotations

import pytest

from repro.detection.api import screen
from repro.detection.types import ScreeningConfig
from repro.population.generator import generate_population

CFG = ScreeningConfig(threshold_km=5.0, duration_s=6000.0, seconds_per_sample=1.0)


def test_finds_engineered_conjunctions(crossing_pair):
    result = screen(crossing_pair, CFG, method="kdtree")
    assert result.n_conjunctions == 2
    conjs = result.conjunctions()
    assert conjs[0].pca_km == pytest.approx(1.22, abs=0.01)
    assert conjs[1].tca_s == pytest.approx(2914.5, abs=1.0)


def test_agrees_with_grid_on_population():
    pop = generate_population(400, seed=31)
    cfg = ScreeningConfig(threshold_km=10.0, duration_s=600.0, seconds_per_sample=2.0)
    kd = screen(pop, cfg, method="kdtree")
    grid = screen(pop, cfg, method="grid", backend="vectorized")
    assert kd.unique_pairs() == grid.unique_pairs()
    assert kd.n_conjunctions == grid.n_conjunctions


def test_reports_build_cost(crossing_pair):
    result = screen(crossing_pair, CFG, method="kdtree")
    assert result.extra["tree_build_seconds"] > 0.0
    assert result.extra["query_radius_km"] == pytest.approx(5.0 + 7.8)
    assert result.method == "kdtree"
