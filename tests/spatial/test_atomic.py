"""CAS-semantics atomic primitives, including multi-thread stress."""
from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.constants import EMPTY_KEY
from repro.spatial.atomic import AtomicCounter, AtomicUint64Array


class TestAtomicArray:
    def test_initial_fill(self):
        arr = AtomicUint64Array(10, fill=EMPTY_KEY)
        assert all(arr.load(k) == EMPTY_KEY for k in range(10))

    def test_store_load(self):
        arr = AtomicUint64Array(4)
        arr.store(2, 12345)
        assert arr.load(2) == 12345

    def test_cas_success_returns_expected(self):
        arr = AtomicUint64Array(4, fill=7)
        old = arr.compare_and_swap(1, 7, 99)
        assert old == 7
        assert arr.load(1) == 99

    def test_cas_failure_leaves_value(self):
        arr = AtomicUint64Array(4, fill=7)
        old = arr.compare_and_swap(1, 8, 99)
        assert old == 7
        assert arr.load(1) == 7

    def test_exchange(self):
        arr = AtomicUint64Array(2, fill=5)
        assert arr.exchange(0, 11) == 5
        assert arr.load(0) == 11

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            AtomicUint64Array(0)
        with pytest.raises(ValueError):
            AtomicUint64Array(4, stripes=3)

    def test_snapshot_is_a_copy(self):
        arr = AtomicUint64Array(3, fill=1)
        snap = arr.snapshot()
        arr.store(0, 42)
        assert snap[0] == 1

    def test_view_is_read_only(self):
        arr = AtomicUint64Array(3)
        view = arr.view()
        with pytest.raises(ValueError):
            view[0] = 1

    def test_concurrent_cas_exactly_one_winner_per_slot(self):
        """N threads race to claim each slot: exactly one must win."""
        arr = AtomicUint64Array(64, fill=EMPTY_KEY)
        n_threads = 8
        wins: "list[list[int]]" = [[] for _ in range(n_threads)]
        barrier = threading.Barrier(n_threads)

        def worker(tid: int) -> None:
            barrier.wait()
            for slot in range(64):
                old = arr.compare_and_swap(slot, EMPTY_KEY, tid)
                if old == EMPTY_KEY:
                    wins[tid].append(slot)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        claimed = [s for w in wins for s in w]
        assert sorted(claimed) == list(range(64))  # every slot exactly once
        for slot in range(64):
            assert arr.load(slot) < n_threads  # holds some winner's id


class TestAtomicCounter:
    def test_fetch_add_returns_previous(self):
        c = AtomicCounter(10)
        assert c.fetch_add(5) == 10
        assert c.value == 15

    def test_concurrent_increments_lose_nothing(self):
        c = AtomicCounter()
        n_threads, per_thread = 8, 500
        seen: "list[set[int]]" = [set() for _ in range(n_threads)]

        def worker(tid: int) -> None:
            for _ in range(per_thread):
                seen[tid].add(c.fetch_add(1))

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        allvals = set().union(*seen)
        assert c.value == n_threads * per_thread
        assert allvals == set(range(n_threads * per_thread))  # unique tickets
