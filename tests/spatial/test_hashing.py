"""MurmurHash3 test vectors and cell-key packing properties."""
from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import EMPTY_KEY
from repro.spatial.hashing import (
    CELL_BITS,
    CELL_RANGE,
    MAX_ROUND_STEPS,
    ROUND_STEP_BITS,
    STEP_CELL_BITS,
    STEP_CELL_RANGE,
    murmur3_32,
    murmur3_fmix64,
    murmur3_fmix64_array,
    pack_cell_key,
    pack_step_cell_key,
    unpack_cell_key,
    unpack_step_cell_key,
)


class TestMurmur32Vectors:
    """Published murmur3_x86_32 verification vectors."""

    @pytest.mark.parametrize(
        "data, seed, expected",
        [
            (b"", 0x00000000, 0x00000000),
            (b"", 0x00000001, 0x514E28B7),
            (b"", 0xFFFFFFFF, 0x81F16F39),
            (b"\xff\xff\xff\xff", 0x00000000, 0x76293B50),
            (b"!Ce\x87", 0x00000000, 0xF55B516B),
            (b"!Ce\x87", 0x5082EDEE, 0x2362F9DE),
            (b"!Ce", 0x00000000, 0x7E4A8634),
            (b"!C", 0x00000000, 0xA0F7B07A),
            (b"!", 0x00000000, 0x72661CF4),
            (b"\x00\x00\x00\x00", 0x00000000, 0x2362F9DE),
            (b"\x00\x00\x00", 0x00000000, 0x85F0B427),
            (b"\x00\x00", 0x00000000, 0x30F4C306),
            (b"\x00", 0x00000000, 0x514E28B7),
        ],
    )
    def test_reference_vectors(self, data, seed, expected):
        assert murmur3_32(data, seed) == expected

    def test_deterministic(self):
        assert murmur3_32(b"conjunction", 42) == murmur3_32(b"conjunction", 42)

    def test_seed_changes_output(self):
        assert murmur3_32(b"satellite", 1) != murmur3_32(b"satellite", 2)


class TestFmix64:
    def test_zero_maps_to_zero(self):
        assert murmur3_fmix64(0) == 0

    def test_avalanche_on_single_bit(self):
        # Flipping one input bit should flip roughly half the output bits.
        base = murmur3_fmix64(0x123456789ABCDEF)
        flipped = murmur3_fmix64(0x123456789ABCDEF ^ 1)
        hamming = bin(base ^ flipped).count("1")
        assert 16 <= hamming <= 48

    def test_range_is_64_bit(self):
        assert 0 <= murmur3_fmix64(EMPTY_KEY - 1) < 2**64

    def test_scalar_matches_array(self):
        keys = np.array([0, 1, 12345, 2**40 + 7, EMPTY_KEY - 1], dtype=np.uint64)
        arr = murmur3_fmix64_array(keys)
        for k, h in zip(keys.tolist(), arr.tolist()):
            assert murmur3_fmix64(int(k)) == int(h)

    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_bijective_sampling(self, key):
        # fmix64 is a bijection: distinct inputs we try never collide with
        # the inverse check via a second application being deterministic.
        h = murmur3_fmix64(key)
        assert murmur3_fmix64(key) == h
        assert 0 <= h < 2**64


class TestCellKeyPacking:
    def test_round_trip_scalar(self):
        key = pack_cell_key(5, 7, 2_000_000)
        assert unpack_cell_key(key) == (5, 7, 2_000_000)

    def test_round_trip_array(self, rng):
        coords = rng.integers(0, CELL_RANGE, size=(100, 3))
        keys = pack_cell_key(coords[:, 0], coords[:, 1], coords[:, 2])
        cx, cy, cz = unpack_cell_key(keys)
        np.testing.assert_array_equal(cx, coords[:, 0])
        np.testing.assert_array_equal(cy, coords[:, 1])
        np.testing.assert_array_equal(cz, coords[:, 2])

    def test_key_never_collides_with_empty_sentinel(self):
        max_key = pack_cell_key(CELL_RANGE - 1, CELL_RANGE - 1, CELL_RANGE - 1)
        assert max_key < EMPTY_KEY
        assert max_key < 2**63

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pack_cell_key(CELL_RANGE, 0, 0)
        with pytest.raises(ValueError):
            pack_cell_key(-1, 0, 0)
        with pytest.raises(ValueError):
            pack_cell_key(np.array([0, CELL_RANGE]), np.array([0, 0]), np.array([0, 0]))

    @settings(max_examples=200, deadline=None)
    @given(
        cx=st.integers(min_value=0, max_value=CELL_RANGE - 1),
        cy=st.integers(min_value=0, max_value=CELL_RANGE - 1),
        cz=st.integers(min_value=0, max_value=CELL_RANGE - 1),
    )
    def test_pack_unpack_property(self, cx, cy, cz):
        assert unpack_cell_key(pack_cell_key(cx, cy, cz)) == (cx, cy, cz)

    def test_distinct_coords_give_distinct_keys(self, rng):
        coords = rng.integers(0, CELL_RANGE, size=(500, 3))
        unique_coords = np.unique(coords, axis=0)
        keys = pack_cell_key(unique_coords[:, 0], unique_coords[:, 1], unique_coords[:, 2])
        assert len(np.unique(keys)) == len(unique_coords)

    def test_cell_bits_budget(self):
        assert 3 * CELL_BITS < 64


class TestStepCellKeyPacking:
    def test_round_trip_scalar(self):
        key = pack_step_cell_key(17, 5, 7, 60_000)
        assert unpack_step_cell_key(key) == (17, 5, 7, 60_000)

    def test_round_trip_array(self, rng):
        coords = rng.integers(0, STEP_CELL_RANGE, size=(100, 3))
        steps = rng.integers(0, MAX_ROUND_STEPS, size=100)
        keys = pack_step_cell_key(steps, coords[:, 0], coords[:, 1], coords[:, 2])
        s, cx, cy, cz = unpack_step_cell_key(keys)
        np.testing.assert_array_equal(s, steps)
        np.testing.assert_array_equal(cx, coords[:, 0])
        np.testing.assert_array_equal(cy, coords[:, 1])
        np.testing.assert_array_equal(cz, coords[:, 2])

    def test_key_never_collides_with_empty_sentinel(self):
        top = STEP_CELL_RANGE - 1
        max_key = pack_step_cell_key(MAX_ROUND_STEPS - 1, top, top, top)
        assert max_key < EMPTY_KEY
        assert max_key < 2**63

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pack_step_cell_key(MAX_ROUND_STEPS, 0, 0, 0)
        with pytest.raises(ValueError):
            pack_step_cell_key(0, STEP_CELL_RANGE, 0, 0)
        with pytest.raises(ValueError):
            pack_step_cell_key(-1, 0, 0, 0)
        with pytest.raises(ValueError):
            pack_step_cell_key(np.array([0, 0]), np.array([0, STEP_CELL_RANGE]), np.array([0, 0]), np.array([0, 0]))

    def test_step_occupies_high_bits(self):
        """Sorting compound keys groups all cells of one step contiguously,
        and equal cells at different steps never compare equal."""
        k_low = pack_step_cell_key(0, STEP_CELL_RANGE - 1, STEP_CELL_RANGE - 1, STEP_CELL_RANGE - 1)
        k_high = pack_step_cell_key(1, 0, 0, 0)
        assert k_low < k_high
        assert pack_step_cell_key(0, 3, 4, 5) != pack_step_cell_key(1, 3, 4, 5)

    @settings(max_examples=200, deadline=None)
    @given(
        step=st.integers(min_value=0, max_value=MAX_ROUND_STEPS - 1),
        cx=st.integers(min_value=0, max_value=STEP_CELL_RANGE - 1),
        cy=st.integers(min_value=0, max_value=STEP_CELL_RANGE - 1),
        cz=st.integers(min_value=0, max_value=STEP_CELL_RANGE - 1),
    )
    def test_pack_unpack_property(self, step, cx, cy, cz):
        assert unpack_step_cell_key(pack_step_cell_key(step, cx, cy, cz)) == (step, cx, cy, cz)

    def test_bit_budget(self):
        assert 3 * STEP_CELL_BITS + ROUND_STEP_BITS < 64
