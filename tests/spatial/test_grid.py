"""UniformGrid: Eq. 1 cell sizing, insertion, neighbourhoods, pair emission."""
from __future__ import annotations

import itertools
import math
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import LEO_SPEED, SIM_HALF_EXTENT
from repro.spatial.grid import (
    HALF_NEIGHBOR_OFFSETS,
    NEIGHBOR_OFFSETS,
    UniformGrid,
    cell_size_km,
    interval_radius_s,
    max_cells_per_axis,
)


class TestCellSize:
    def test_eq1_formula(self):
        assert cell_size_km(2.0, 1.0) == pytest.approx(2.0 + 7.8)
        assert cell_size_km(2.0, 9.0) == pytest.approx(2.0 + 70.2)
        assert cell_size_km(5.0, 0.5, speed_kms=10.0) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            cell_size_km(0.0, 1.0)
        with pytest.raises(ValueError):
            cell_size_km(2.0, 0.0)

    def test_eq1_worst_case_no_skip(self):
        """Fig. 4's worst case: two objects closing at 2 x LEO speed from
        just over the threshold cannot skip below it unseen between steps
        when cells obey Eq. 1: each object moves at most v*s_ps, so at the
        sample nearest the minimum they are within d + v*s_ps = g_c of each
        other, i.e. in the same or adjacent cells."""
        d, sps = 2.0, 1.0
        g = cell_size_km(d, sps)
        # Head-on worst case along one axis.
        v = LEO_SPEED
        # Distance at the minimum: just under the threshold.
        d_min = d * 0.999
        # At a sample at most sps/2 away, separation grew by <= 2*v*(sps/2).
        worst_sample_distance = d_min + 2 * v * (sps / 2)
        assert worst_sample_distance <= g + d  # same-or-neighbour cells territory
        assert worst_sample_distance / g < 2.0  # cannot be two full cells apart


class TestNeighborOffsets:
    def test_full_neighbourhood_has_26(self):
        assert len(NEIGHBOR_OFFSETS) == 26
        assert (0, 0, 0) not in NEIGHBOR_OFFSETS

    def test_half_neighbourhood_has_13(self):
        assert len(HALF_NEIGHBOR_OFFSETS) == 13

    def test_half_plus_mirror_is_full(self):
        mirrored = {(-dx, -dy, -dz) for dx, dy, dz in HALF_NEIGHBOR_OFFSETS}
        assert set(HALF_NEIGHBOR_OFFSETS) | mirrored == set(NEIGHBOR_OFFSETS)
        assert not set(HALF_NEIGHBOR_OFFSETS) & mirrored


class TestCoordinates:
    def test_origin_maps_to_centre_cell(self):
        grid = UniformGrid(10.0, capacity=4)
        c = grid.cell_coords(np.zeros((1, 3)))[0]
        assert (c >= 0).all()
        # Adjacent positions map to adjacent cells.
        c2 = grid.cell_coords(np.array([[10.0, 0.0, 0.0]]))[0]
        assert c2[0] == c[0] + 1

    def test_out_of_extent_rejected(self):
        grid = UniformGrid(10.0, capacity=4)
        with pytest.raises(ValueError, match="outside the simulation cube"):
            grid.cell_coords(np.array([[SIM_HALF_EXTENT + 1.0, 0, 0]]))

    def test_too_small_cells_rejected(self):
        with pytest.raises(ValueError, match="exceeding the packable range"):
            UniformGrid(0.001, capacity=4)


class TestInsertionAndMembers:
    def test_same_cell_objects_share_slot(self):
        grid = UniformGrid(10.0, capacity=4)
        grid.insert(0, np.array([1.0, 1.0, 1.0]))
        grid.insert(1, np.array([2.0, 2.0, 2.0]))
        occ = grid.occupancy()
        assert len(occ) == 1
        assert list(occ.values())[0] == [0, 1]

    def test_distinct_cells(self):
        grid = UniformGrid(10.0, capacity=4)
        grid.insert(0, np.array([0.0, 0.0, 0.0]))
        grid.insert(1, np.array([500.0, 0.0, 0.0]))
        assert len(grid.occupancy()) == 2

    def test_batch_insert(self):
        grid = UniformGrid(10.0, capacity=8)
        pos = np.array([[k * 100.0, 0.0, 0.0] for k in range(8)])
        grid.insert_batch(np.arange(8), pos)
        assert len(grid.occupancy()) == 8

    def test_reset(self):
        grid = UniformGrid(10.0, capacity=4)
        grid.insert(0, np.zeros(3))
        grid.reset()
        assert grid.occupancy() == {}
        grid.insert(1, np.zeros(3))
        assert list(grid.occupancy().values()) == [[1]]

    def test_concurrent_insert_matches_serial(self):
        """The CAS protocol must produce identical cell contents under
        threads — the paper's core non-blocking claim."""
        rng = np.random.default_rng(5)
        n = 300
        pos = rng.uniform(-1000, 1000, size=(n, 3))
        serial = UniformGrid(25.0, capacity=n)
        serial.insert_batch(np.arange(n), pos)

        shared = UniformGrid(25.0, capacity=n)
        n_threads = 6
        chunks = np.array_split(np.arange(n), n_threads)
        barrier = threading.Barrier(n_threads)

        def worker(chunk) -> None:
            barrier.wait()
            for k in chunk:
                shared.insert(int(k), pos[k])

        threads = [threading.Thread(target=worker, args=(c,)) for c in chunks]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert shared.occupancy() == serial.occupancy()


class TestCandidatePairs:
    def test_two_objects_same_cell(self):
        grid = UniformGrid(10.0, capacity=2)
        grid.insert(0, np.array([1.0, 0, 0]))
        grid.insert(1, np.array([2.0, 0, 0]))
        assert grid.candidate_pairs() == [(0, 1)]

    def test_neighbouring_cells_pair_once(self):
        grid = UniformGrid(10.0, capacity=2)
        grid.insert(0, np.array([1.0, 0, 0]))
        grid.insert(1, np.array([11.0, 0, 0]))  # adjacent cell in x
        assert grid.candidate_pairs() == [(0, 1)]

    def test_far_objects_no_pairs(self):
        grid = UniformGrid(10.0, capacity=2)
        grid.insert(0, np.array([0.0, 0, 0]))
        grid.insert(1, np.array([100.0, 0, 0]))
        assert grid.candidate_pairs() == []

    def test_diagonal_neighbours_pair(self):
        grid = UniformGrid(10.0, capacity=2)
        grid.insert(0, np.array([9.0, 9.0, 9.0]))
        grid.insert(1, np.array([11.0, 11.0, 11.0]))
        assert grid.candidate_pairs() == [(0, 1)]

    def test_triangle_in_one_cell(self):
        grid = UniformGrid(10.0, capacity=3)
        for k in range(3):
            grid.insert(k, np.array([1.0 + k, 0, 0]))
        assert sorted(grid.candidate_pairs()) == [(0, 1), (0, 2), (1, 2)]

    def test_no_duplicate_pairs_random(self, rng):
        n = 120
        pos = rng.uniform(-300, 300, size=(n, 3))
        grid = UniformGrid(50.0, capacity=n)
        grid.insert_batch(np.arange(n), pos)
        pairs = grid.candidate_pairs()
        assert len(pairs) == len(set(pairs))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_never_misses_close_pairs_property(self, seed):
        """Completeness invariant: any two objects within one cell size of
        each other must be emitted as a candidate pair."""
        rng = np.random.default_rng(seed)
        n = 40
        cell = 30.0
        pos = rng.uniform(-200, 200, size=(n, 3))
        grid = UniformGrid(cell, capacity=n)
        grid.insert_batch(np.arange(n), pos)
        pairs = set(grid.candidate_pairs())
        for a, b in itertools.combinations(range(n), 2):
            if np.linalg.norm(pos[a] - pos[b]) <= cell:
                assert (a, b) in pairs, (a, b, np.linalg.norm(pos[a] - pos[b]))


class TestIntervalRadius:
    def test_formula(self):
        assert interval_radius_s(9.8, 7.0) == pytest.approx(2 * 9.8 / 7.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            interval_radius_s(9.8, 0.0)

    def test_max_cells(self):
        assert max_cells_per_axis(85.0) == math.ceil(85000.0 / 85.0)


class TestParallelCandidatePairs:
    def test_matches_serial_emission(self, rng):
        n = 150
        pos = rng.uniform(-300, 300, size=(n, 3))
        grid = UniformGrid(40.0, capacity=n)
        grid.insert_batch(np.arange(n), pos)
        serial = sorted(grid.candidate_pairs())
        for n_threads in (1, 2, 4):
            parallel = sorted(grid.candidate_pairs_parallel(n_threads=n_threads))
            assert parallel == serial
