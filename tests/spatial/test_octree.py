"""Loose octree: containment, queries, pair sweeps."""
from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.octree import LooseOctree


def _brute_radius(points, q, r):
    d2 = np.einsum("ij,ij->i", points - q, points - q)
    return np.sort(np.nonzero(d2 <= r * r)[0])


class TestBuild:
    def test_counts_preserved(self, rng):
        points = rng.uniform(-500, 500, size=(300, 3))
        tree = LooseOctree(object_radius=10.0)
        tree.build(points)
        total = sum(tree.depth_histogram.values())
        assert total == 300

    def test_deep_placement_for_clustered_points(self, rng):
        points = rng.uniform(-5, 5, size=(100, 3))
        tree = LooseOctree(object_radius=1.0, max_depth=12)
        tree.build(points)
        hist = tree.depth_histogram
        assert max(hist) >= 8  # clustered points sink deep

    def test_rebuild_resets(self, rng):
        tree = LooseOctree(object_radius=10.0)
        tree.build(rng.uniform(-100, 100, size=(50, 3)))
        nodes_first = tree.n_nodes
        tree.build(rng.uniform(-100, 100, size=(10, 3)))
        assert sum(tree.depth_histogram.values()) == 10
        assert tree.n_nodes <= nodes_first

    def test_validation(self):
        with pytest.raises(ValueError):
            LooseOctree(object_radius=0.0)
        with pytest.raises(ValueError):
            LooseOctree(object_radius=1.0, max_depth=0)
        with pytest.raises(ValueError):
            LooseOctree(object_radius=1.0, looseness=0.5)
        tree = LooseOctree(object_radius=1.0)
        with pytest.raises(ValueError):
            tree.build(np.zeros((3, 2)))
        with pytest.raises(RuntimeError):
            LooseOctree(object_radius=1.0).query_radius(np.zeros(3), 1.0)


class TestQueries:
    def test_matches_brute_force(self, rng):
        points = rng.uniform(-400, 400, size=(400, 3))
        tree = LooseOctree(object_radius=5.0)
        tree.build(points)
        for _ in range(20):
            q = rng.uniform(-400, 400, size=3)
            r = float(rng.uniform(5.0, 80.0))
            np.testing.assert_array_equal(
                tree.query_radius(q, r), _brute_radius(points, q, r)
            )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_query_property(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 150))
        points = rng.uniform(-200, 200, size=(n, 3))
        tree = LooseOctree(object_radius=8.0)
        tree.build(points)
        q = rng.uniform(-200, 200, size=3)
        r = float(rng.uniform(1.0, 50.0))
        np.testing.assert_array_equal(tree.query_radius(q, r), _brute_radius(points, q, r))

    def test_pairs_match_kdtree(self, rng):
        from repro.spatial.kdtree import KDTree

        points = rng.uniform(-100, 100, size=(150, 3))
        tree = LooseOctree(object_radius=5.0)
        tree.build(points)
        kd = KDTree(points)
        oct_pairs = set(zip(*(x.tolist() for x in tree.pairs_within(25.0))))
        kd_pairs = set(zip(*(x.tolist() for x in kd.pairs_within(25.0))))
        assert oct_pairs == kd_pairs

    def test_pair_order(self, rng):
        points = rng.uniform(-50, 50, size=(60, 3))
        tree = LooseOctree(object_radius=5.0)
        tree.build(points)
        i, j = tree.pairs_within(20.0)
        assert np.all(i < j)


class TestBoundaryCrossing:
    """Objects straddling node loose-cube edges — the cases a strict
    (non-loose) subdivision silently drops pairs on.

    Octant planes sit at coordinates 0, ±half/2, ±half/4, … ; a pair of
    points a hair either side of such a plane lands in different child
    cubes, and the loose-cube margin (plus query-side descent into every
    intersecting child) is what keeps radius queries exact.  Each test
    compares against brute force so a regression in the margin arithmetic
    cannot hide.
    """

    def _plane_coords(self):
        from repro.constants import SIM_HALF_EXTENT

        # Subdivision-plane offsets from the root centre at depths 1-4.
        return [0.0] + [SIM_HALF_EXTENT / 2.0**d for d in range(1, 5)]

    def test_straddling_pairs_found_by_radius_query(self):
        eps = 1e-3
        points = []
        for b in self._plane_coords():
            points.append([b - eps, 100.0, 100.0])
            points.append([b + eps, 100.0, 100.0])
        points = np.asarray(points)
        tree = LooseOctree(object_radius=5.0)
        tree.build(points)
        for idx in range(0, len(points), 2):
            hits = tree.query_radius(points[idx], 1.0)
            np.testing.assert_array_equal(hits, _brute_radius(points, points[idx], 1.0))
            assert idx + 1 in hits.tolist()

    def test_straddling_pairs_found_by_pairs_within(self):
        eps = 1e-3
        rows = []
        for axis in range(3):
            for b in self._plane_coords():
                p = [37.0, -21.0, 53.0]
                q = list(p)
                p[axis] = b - eps
                q[axis] = b + eps
                rows += [p, q]
        points = np.asarray(rows)
        tree = LooseOctree(object_radius=5.0)
        tree.build(points)
        i, j = tree.pairs_within(1.0)
        got = set(zip(i.tolist(), j.tolist()))
        for k in range(0, len(points), 2):
            assert (k, k + 1) in got, points[k]

    def test_query_point_exactly_on_plane(self, rng):
        points = rng.uniform(-300, 300, size=(200, 3))
        points[0] = [0.0, 0.0, 0.0]
        points[1] = [0.0, 150.0, -40.0]
        tree = LooseOctree(object_radius=5.0)
        tree.build(points)
        for q in ([0.0, 0.0, 0.0], [0.0, 150.0, -40.0], [0.0, 1e-9, 0.0]):
            for r in (1.0, 30.0, 120.0):
                np.testing.assert_array_equal(
                    tree.query_radius(np.asarray(q), r),
                    _brute_radius(points, np.asarray(q), r),
                )

    def test_cluster_on_deep_corner(self):
        from repro.constants import SIM_HALF_EXTENT

        # A corner where planes of several depths meet in all three axes.
        corner = SIM_HALF_EXTENT / 8.0
        rng = np.random.default_rng(1234)
        points = corner + rng.uniform(-0.5, 0.5, size=(80, 3))
        tree = LooseOctree(object_radius=2.0, max_depth=12)
        tree.build(points)
        for idx in (0, 17, 42):
            for r in (0.25, 0.6, 1.5):
                np.testing.assert_array_equal(
                    tree.query_radius(points[idx], r),
                    _brute_radius(points, points[idx], r),
                )

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_boundary_jitter_property(self, seed):
        """Random points snapped to random subdivision planes ± tiny
        jitter still answer radius queries exactly."""
        from repro.constants import SIM_HALF_EXTENT

        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 60))
        points = rng.uniform(-400, 400, size=(n, 3))
        planes = np.array([0.0] + [SIM_HALF_EXTENT / 2.0**d for d in range(1, 6)])
        snap = rng.random(size=(n, 3)) < 0.6
        choice = planes[rng.integers(0, len(planes), size=(n, 3))]
        sign = rng.choice([-1.0, 1.0], size=(n, 3))
        jitter = rng.uniform(0.0, 1e-2, size=(n, 3))
        points = np.where(snap, sign * choice + jitter * sign, points)
        tree = LooseOctree(object_radius=4.0)
        tree.build(points)
        q = points[int(rng.integers(0, n))] + rng.uniform(-1e-3, 1e-3, size=3)
        r = float(rng.uniform(0.5, 50.0))
        np.testing.assert_array_equal(tree.query_radius(q, r), _brute_radius(points, q, r))
