"""Loose octree: containment, queries, pair sweeps."""
from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.octree import LooseOctree


def _brute_radius(points, q, r):
    d2 = np.einsum("ij,ij->i", points - q, points - q)
    return np.sort(np.nonzero(d2 <= r * r)[0])


class TestBuild:
    def test_counts_preserved(self, rng):
        points = rng.uniform(-500, 500, size=(300, 3))
        tree = LooseOctree(object_radius=10.0)
        tree.build(points)
        total = sum(tree.depth_histogram.values())
        assert total == 300

    def test_deep_placement_for_clustered_points(self, rng):
        points = rng.uniform(-5, 5, size=(100, 3))
        tree = LooseOctree(object_radius=1.0, max_depth=12)
        tree.build(points)
        hist = tree.depth_histogram
        assert max(hist) >= 8  # clustered points sink deep

    def test_rebuild_resets(self, rng):
        tree = LooseOctree(object_radius=10.0)
        tree.build(rng.uniform(-100, 100, size=(50, 3)))
        nodes_first = tree.n_nodes
        tree.build(rng.uniform(-100, 100, size=(10, 3)))
        assert sum(tree.depth_histogram.values()) == 10
        assert tree.n_nodes <= nodes_first

    def test_validation(self):
        with pytest.raises(ValueError):
            LooseOctree(object_radius=0.0)
        with pytest.raises(ValueError):
            LooseOctree(object_radius=1.0, max_depth=0)
        with pytest.raises(ValueError):
            LooseOctree(object_radius=1.0, looseness=0.5)
        tree = LooseOctree(object_radius=1.0)
        with pytest.raises(ValueError):
            tree.build(np.zeros((3, 2)))
        with pytest.raises(RuntimeError):
            LooseOctree(object_radius=1.0).query_radius(np.zeros(3), 1.0)


class TestQueries:
    def test_matches_brute_force(self, rng):
        points = rng.uniform(-400, 400, size=(400, 3))
        tree = LooseOctree(object_radius=5.0)
        tree.build(points)
        for _ in range(20):
            q = rng.uniform(-400, 400, size=3)
            r = float(rng.uniform(5.0, 80.0))
            np.testing.assert_array_equal(
                tree.query_radius(q, r), _brute_radius(points, q, r)
            )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_query_property(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 150))
        points = rng.uniform(-200, 200, size=(n, 3))
        tree = LooseOctree(object_radius=8.0)
        tree.build(points)
        q = rng.uniform(-200, 200, size=3)
        r = float(rng.uniform(1.0, 50.0))
        np.testing.assert_array_equal(tree.query_radius(q, r), _brute_radius(points, q, r))

    def test_pairs_match_kdtree(self, rng):
        from repro.spatial.kdtree import KDTree

        points = rng.uniform(-100, 100, size=(150, 3))
        tree = LooseOctree(object_radius=5.0)
        tree.build(points)
        kd = KDTree(points)
        oct_pairs = set(zip(*(x.tolist() for x in tree.pairs_within(25.0))))
        kd_pairs = set(zip(*(x.tolist() for x in kd.pairs_within(25.0))))
        assert oct_pairs == kd_pairs

    def test_pair_order(self, rng):
        points = rng.uniform(-50, 50, size=(60, 3))
        tree = LooseOctree(object_radius=5.0)
        tree.build(points)
        i, j = tree.pairs_within(20.0)
        assert np.all(i < j)
