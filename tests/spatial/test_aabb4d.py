"""Unit tests of the build-once 4D AABB tree and its swept-box inputs."""
from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import MU_EARTH
from repro.filters.occupancy import OccupancyBitmap, box_radial_ranges
from repro.population.generator import generate_population
from repro.spatial.aabb4d import (
    AABB4DTree,
    knot_schedule,
    max_speed_kms,
    morton3,
    swept_boxes,
)


def _random_boxes(rng, n_boxes, n_intervals, span=500.0, size=60.0):
    centers = rng.uniform(-span, span, size=(n_boxes, 3))
    half = rng.uniform(1.0, size, size=(n_boxes, 3))
    interval = rng.integers(0, n_intervals, size=n_boxes).astype(np.int64)
    return centers - half, centers + half, interval


def _brute_pairs(lo, hi, interval, active=None):
    pairs = set()
    n = len(lo)
    for a in range(n):
        if active is not None and not active[a]:
            continue
        for b in range(n):
            if b == a:
                continue
            if interval[a] != interval[b]:
                continue
            if np.all(lo[a] <= hi[b]) and np.all(lo[b] <= hi[a]):
                pairs.add((min(a, b), max(a, b)))
    return pairs


class TestKnotSchedule:
    def test_partition_covers_all_steps_once(self):
        for n_steps in (2, 3, 33, 64, 65, 100):
            for k in (1, 4, 32, 200):
                knots, starts, ends = knot_schedule(n_steps, k)
                owned = []
                for idx in range(len(starts)):
                    hi = ends[idx] + (1 if idx == len(starts) - 1 else 0)
                    owned.extend(range(starts[idx], hi))
                assert owned == list(range(n_steps)), (n_steps, k)

    def test_knots_are_interval_edges(self):
        knots, starts, ends = knot_schedule(100, 32)
        np.testing.assert_array_equal(knots[:-1], starts)
        np.testing.assert_array_equal(knots[1:], ends)
        assert knots[-1] == 99

    def test_validation(self):
        with pytest.raises(ValueError):
            knot_schedule(1, 32)
        with pytest.raises(ValueError):
            knot_schedule(10, 0)


class TestSweptBoxes:
    def test_contains_every_intermediate_sample(self):
        """The sweep margin bounds true motion: every fine-grained sample
        of every object lies inside its interval's box."""
        from repro.detection.types import ScreeningConfig
        from repro.orbits.propagation import Propagator

        pop = generate_population(40, seed=5)
        cfg = ScreeningConfig(duration_s=3600.0, seconds_per_sample=5.0)
        times = cfg.sample_times()
        knots, starts, ends = knot_schedule(len(times), 16)
        prop = Propagator(pop)
        knot_pos = prop.positions_batch(times[knots])
        lo, hi, interval, obj = swept_boxes(
            knot_pos, times[ends] - times[starts], max_speed_kms(pop), 0.0
        )
        n = len(pop)
        check = Propagator(pop)
        for k in range(len(starts)):
            s_hi = ends[k] + (1 if k == len(starts) - 1 else 0)
            for s in range(starts[k], s_hi):
                pos = check.positions(float(times[s]))
                box = k * n + np.arange(n)
                assert np.all(pos >= lo[box]), (k, s)
                assert np.all(pos <= hi[box]), (k, s)

    def test_pad_inflates_both_sides(self):
        knot_pos = np.zeros((3, 2, 3))
        knot_pos[1] = 1.0
        lo0, hi0, _, _ = swept_boxes(knot_pos, np.ones(2), np.zeros(2), 0.0)
        lo5, hi5, _, _ = swept_boxes(knot_pos, np.ones(2), np.zeros(2), 5.0)
        np.testing.assert_allclose(lo0 - lo5, 5.0)
        np.testing.assert_allclose(hi5 - hi0, 5.0)

    def test_interval_major_layout(self):
        knot_pos = np.arange(3 * 4 * 3, dtype=float).reshape(3, 4, 3)
        _, _, interval, obj = swept_boxes(knot_pos, np.ones(2), np.zeros(4), 0.0)
        np.testing.assert_array_equal(interval, [0, 0, 0, 0, 1, 1, 1, 1])
        np.testing.assert_array_equal(obj, [0, 1, 2, 3, 0, 1, 2, 3])


class TestMaxSpeed:
    def test_bounds_sampled_speeds(self):
        from repro.orbits.propagation import Propagator

        pop = generate_population(50, seed=11)
        v_max = max_speed_kms(pop)
        prop = Propagator(pop)
        for t in np.linspace(0.0, 7000.0, 25):
            _, vel = prop.states(float(t))
            speeds = np.linalg.norm(vel, axis=1)
            assert np.all(speeds <= v_max * (1.0 + 1e-12))

    def test_matches_vis_viva_at_perigee(self):
        pop = generate_population(10, seed=2)
        expected = np.sqrt(MU_EARTH * (2.0 / pop.perigee - 1.0 / pop.a))
        np.testing.assert_allclose(max_speed_kms(pop), expected)


class TestTree:
    def test_matches_brute_force(self, rng):
        lo, hi, interval = _random_boxes(rng, 120, 4)
        tree = AABB4DTree(lo, hi, interval)
        a, b = tree.query_self_pairs()
        got = set(zip(np.minimum(a, b).tolist(), np.maximum(a, b).tolist()))
        assert got == _brute_pairs(lo, hi, interval)

    def test_each_pair_emitted_once(self, rng):
        lo, hi, interval = _random_boxes(rng, 200, 2, span=100.0, size=80.0)
        tree = AABB4DTree(lo, hi, interval)
        a, b = tree.query_self_pairs()
        keys = set(zip(a.tolist(), b.tolist()))
        assert len(keys) == len(a)
        assert np.all(a != b)

    def test_intervals_isolate(self, rng):
        # Identical geometry in different intervals must never pair.
        centers = rng.uniform(-50, 50, size=(30, 3))
        lo = np.vstack([centers - 10, centers - 10])
        hi = np.vstack([centers + 10, centers + 10])
        interval = np.repeat([0, 1], 30)
        a, b = AABB4DTree(lo, hi, interval).query_self_pairs()
        assert np.all(interval[a] == interval[b])

    def test_active_mask_restricts_queries(self, rng):
        lo, hi, interval = _random_boxes(rng, 80, 3)
        tree = AABB4DTree(lo, hi, interval)
        active = rng.random(80) < 0.5
        a, b = tree.query_self_pairs(active)
        got = set(zip(np.minimum(a, b).tolist(), np.maximum(a, b).tolist()))
        expected = _brute_pairs(lo, hi, interval, active=active)
        # Non-active boxes never *initiate* a descent, but still appear as
        # targets — the occupancy contract only drops provably-isolated
        # boxes, for which both directions are empty anyway.
        assert got >= expected
        for x, y in got:
            assert active[x] or active[y]

    def test_empty_and_tiny_inputs(self):
        e = np.empty((0, 3))
        a, b = AABB4DTree(e, e, np.empty(0, dtype=np.int64)).query_self_pairs()
        assert len(a) == len(b) == 0
        one = AABB4DTree(np.zeros((1, 3)), np.ones((1, 3)), np.zeros(1, dtype=np.int64))
        a, b = one.query_self_pairs()
        assert len(a) == 0

    def test_memory_bytes_positive_and_soA(self, rng):
        lo, hi, interval = _random_boxes(rng, 50, 2)
        tree = AABB4DTree(lo, hi, interval)
        assert tree.memory_bytes > 0
        # SoA contract: the node store is flat numpy, no per-node objects.
        assert tree.node_lo.shape == (2 * tree.n_leaves, 4)
        assert tree.node_lo.dtype == np.float64

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_brute_force_property(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 60))
        k = int(rng.integers(1, 5))
        lo, hi, interval = _random_boxes(rng, n, k, span=80.0, size=50.0)
        tree = AABB4DTree(lo, hi, interval)
        a, b = tree.query_self_pairs()
        got = set(zip(np.minimum(a, b).tolist(), np.maximum(a, b).tolist()))
        assert got == _brute_pairs(lo, hi, interval)


class TestMorton:
    def test_locality_ordering_is_deterministic(self):
        pts = np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0], [-1.0, -1.0, -1.0]])
        c1 = morton3(pts)
        c2 = morton3(pts)
        np.testing.assert_array_equal(c1, c2)
        assert c1.dtype == np.uint64

    def test_out_of_cube_points_clip(self):
        pts = np.array([[1e9, 1e9, 1e9], [-1e9, -1e9, -1e9]])
        codes = morton3(pts)
        assert codes[0] == np.uint64((1 << 30) - 1)
        assert codes[1] == np.uint64(0)


class TestOccupancy:
    def test_radial_ranges(self):
        lo = np.array([[3.0, -1.0, -1.0], [-1.0, -1.0, -1.0]])
        hi = np.array([[5.0, 1.0, 1.0], [1.0, 1.0, 1.0]])
        r_lo, r_hi = box_radial_ranges(lo, hi)
        assert r_lo[0] == pytest.approx(3.0)
        assert r_lo[1] == 0.0  # contains the origin
        assert r_hi[0] == pytest.approx(np.sqrt(25 + 1 + 1))
        assert r_hi[1] == pytest.approx(np.sqrt(3.0))

    def test_isolated_boxes_rejected_crowded_kept(self):
        # Two boxes share altitude band 7000 km; one sits alone at 20000.
        lo = np.array([[6990.0, -5, -5], [-5, 6990.0, -5], [19990.0, -5, -5]])
        hi = lo + 20.0
        interval = np.zeros(3, dtype=np.int64)
        bitmap = OccupancyBitmap(lo, hi, interval, 1, shell_km=50.0)
        mask = bitmap.active_mask()
        assert mask[0] and mask[1] and not mask[2]

    def test_rejection_is_sound(self, rng):
        """Never drops a box that overlaps another of its interval."""
        for _ in range(10):
            lo, hi, interval = _random_boxes(rng, 60, 3, span=3000.0, size=200.0)
            bitmap = OccupancyBitmap(lo, hi, interval, 3, shell_km=100.0)
            mask = bitmap.active_mask()
            pairs = _brute_pairs(lo, hi, interval)
            for a, b in pairs:
                assert mask[a] and mask[b]

    def test_intervals_counted_separately(self):
        # The same altitude band in different intervals is not crowding.
        lo = np.array([[6990.0, -5, -5], [6990.0, -5, -5]])
        hi = lo + 20.0
        bitmap = OccupancyBitmap(lo, hi, np.array([0, 1]), 2, shell_km=50.0)
        assert not bitmap.active_mask().any()

    def test_memory_bytes(self, rng):
        lo, hi, interval = _random_boxes(rng, 40, 2)
        bitmap = OccupancyBitmap(lo, hi, interval, 2)
        assert bitmap.memory_bytes > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            OccupancyBitmap(np.zeros((1, 3)), np.ones((1, 3)), np.zeros(1), 1, shell_km=0.0)
