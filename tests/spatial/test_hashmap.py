"""Fixed-size open-addressing hash map: CAS insertion, probing, concurrency."""
from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import EMPTY_KEY, NULL_INDEX
from repro.spatial.hashmap import FixedSizeHashMap, HashMapFullError


class TestClaimAndLookup:
    def test_claim_then_lookup(self):
        hm = FixedSizeHashMap(16)
        slot = hm.claim_slot(42)
        assert hm.lookup(42) == slot

    def test_missing_key_lookup(self):
        hm = FixedSizeHashMap(16)
        hm.claim_slot(1)
        assert hm.lookup(2) == -1

    def test_duplicate_claim_returns_same_slot(self):
        hm = FixedSizeHashMap(16)
        assert hm.claim_slot(7) == hm.claim_slot(7)
        assert hm.size == 1

    def test_collisions_resolved_by_linear_probing(self):
        # With capacity 1 impossible beyond one key; with 4, all 3 distinct
        # keys must land somewhere distinct.
        hm = FixedSizeHashMap(4)
        slots = {hm.claim_slot(k) for k in (100, 200, 300)}
        assert len(slots) == 3

    def test_full_map_raises(self):
        hm = FixedSizeHashMap(3)
        for k in range(3):
            hm.claim_slot(k)
        with pytest.raises(HashMapFullError):
            hm.claim_slot(99)

    def test_key_range_validation(self):
        hm = FixedSizeHashMap(4)
        with pytest.raises(ValueError):
            hm.claim_slot(EMPTY_KEY)
        with pytest.raises(ValueError):
            hm.claim_slot(-1)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FixedSizeHashMap(0)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2**40), min_size=1, max_size=60, unique=True))
    def test_insert_then_find_property(self, keys):
        hm = FixedSizeHashMap(2 * len(keys))
        slots = [hm.claim_slot(k) for k in keys]
        assert len(set(slots)) == len(keys)
        for k, s in zip(keys, slots):
            assert hm.lookup(k) == s
        assert hm.size == len(keys)


class TestValues:
    def test_default_value_is_null(self):
        hm = FixedSizeHashMap(8)
        slot = hm.claim_slot(5)
        assert hm.get_value(slot) == NULL_INDEX

    def test_cas_value_from_null(self):
        hm = FixedSizeHashMap(8)
        slot = hm.claim_slot(5)
        old = hm.cas_value(slot, NULL_INDEX, 3)
        assert old == NULL_INDEX
        assert hm.get_value(slot) == 3

    def test_cas_value_failure(self):
        hm = FixedSizeHashMap(8)
        slot = hm.claim_slot(5)
        hm.set_value(slot, 1)
        assert hm.cas_value(slot, 7, 9) == 1
        assert hm.get_value(slot) == 1

    def test_zero_is_a_valid_value(self):
        # Regression guard: entry index 0 must be distinguishable from null.
        hm = FixedSizeHashMap(8)
        slot = hm.claim_slot(5)
        hm.set_value(slot, 0)
        assert hm.get_value(slot) == 0


class TestBulkAccess:
    def test_occupied_slots(self):
        hm = FixedSizeHashMap(32)
        keys = [3, 17, 99]
        slots = sorted(hm.claim_slot(k) for k in keys)
        assert sorted(hm.occupied_slots().tolist()) == slots

    def test_load_factor_and_memory(self):
        hm = FixedSizeHashMap(10)
        hm.claim_slot(1)
        hm.claim_slot(2)
        assert hm.load_factor == pytest.approx(0.2)
        assert hm.memory_bytes == 160

    def test_keys_array_marks_empties(self):
        hm = FixedSizeHashMap(4)
        hm.claim_slot(1)
        keys = hm.keys_array()
        assert (keys == np.uint64(EMPTY_KEY)).sum() == 3


class TestConcurrency:
    def test_parallel_claims_no_lost_keys(self):
        """Threads hammer overlapping key sets; every key ends up exactly once."""
        hm = FixedSizeHashMap(512)
        all_keys = list(range(200))
        n_threads = 8
        results: "list[dict[int, int]]" = [dict() for _ in range(n_threads)]
        barrier = threading.Barrier(n_threads)

        def worker(tid: int) -> None:
            barrier.wait()
            for k in all_keys:
                results[tid][k] = hm.claim_slot(k)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # All threads agree on every key's slot.
        for k in all_keys:
            slots = {results[t][k] for t in range(n_threads)}
            assert len(slots) == 1, f"key {k} mapped to multiple slots {slots}"
        assert hm.size == len(all_keys)
