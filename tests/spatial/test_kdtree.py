"""Kd-tree: construction, radius queries, pair sweeps."""
from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.kdtree import KDTree


def _brute_radius(points, q, r):
    d2 = np.einsum("ij,ij->i", points - q, points - q)
    return np.sort(np.nonzero(d2 <= r * r)[0])


class TestQueryRadius:
    def test_matches_brute_force(self, rng):
        points = rng.uniform(-100, 100, size=(500, 3))
        tree = KDTree(points)
        for _ in range(25):
            q = rng.uniform(-100, 100, size=3)
            r = float(rng.uniform(1.0, 40.0))
            np.testing.assert_array_equal(
                tree.query_radius(q, r), _brute_radius(points, q, r)
            )

    def test_point_on_itself(self, rng):
        points = rng.uniform(-10, 10, size=(50, 3))
        tree = KDTree(points)
        hits = tree.query_radius(points[7], 1e-9)
        assert 7 in hits.tolist()

    def test_no_hits(self, rng):
        points = rng.uniform(-10, 10, size=(50, 3))
        tree = KDTree(points)
        assert len(tree.query_radius(np.array([1000.0, 0, 0]), 1.0)) == 0

    def test_small_input_is_single_leaf(self):
        points = np.arange(9.0).reshape(3, 3)
        tree = KDTree(points)
        assert tree.n_nodes == 1
        assert tree.query_radius(points[1], 0.1).tolist() == [1]

    def test_validation(self):
        with pytest.raises(ValueError):
            KDTree(np.zeros((0, 3)))
        with pytest.raises(ValueError):
            KDTree(np.zeros((5, 2)))
        tree = KDTree(np.zeros((5, 3)))
        with pytest.raises(ValueError):
            tree.query_radius(np.zeros(3), 0.0)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_query_property(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 120))
        points = rng.uniform(-50, 50, size=(n, 3))
        tree = KDTree(points)
        q = rng.uniform(-50, 50, size=3)
        r = float(rng.uniform(0.5, 30.0))
        np.testing.assert_array_equal(tree.query_radius(q, r), _brute_radius(points, q, r))


class TestPairsWithin:
    def test_matches_brute_force(self, rng):
        points = rng.uniform(-50, 50, size=(120, 3))
        tree = KDTree(points)
        i, j = tree.pairs_within(15.0)
        got = set(zip(i.tolist(), j.tolist()))
        expected = set()
        for a in range(len(points)):
            for b in range(a + 1, len(points)):
                if np.linalg.norm(points[a] - points[b]) <= 15.0:
                    expected.add((a, b))
        assert got == expected

    def test_each_pair_once(self, rng):
        points = rng.uniform(-20, 20, size=(80, 3))
        tree = KDTree(points)
        i, j = tree.pairs_within(10.0)
        assert np.all(i < j)
        pairs = list(zip(i.tolist(), j.tolist()))
        assert len(pairs) == len(set(pairs))

    def test_memory_accounting(self, rng):
        tree = KDTree(rng.uniform(-10, 10, size=(200, 3)))
        assert tree.memory_bytes > 200 * 8
