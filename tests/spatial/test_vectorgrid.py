"""Data-parallel grids: equivalence with the serial grid, CAS rounds."""
from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.grid import UniformGrid
from repro.spatial.vectorgrid import (
    SortedGrid,
    VectorHashGrid,
    compute_cell_keys,
    compute_step_cell_keys,
)


def _random_points(rng, n, span=400.0):
    return rng.uniform(-span, span, size=(n, 3))


def _pair_set(i, j):
    return set(zip(i.tolist(), j.tolist()))


class TestComputeCellKeys:
    def test_matches_uniform_grid(self, rng):
        pos = _random_points(rng, 50)
        grid = UniformGrid(30.0, capacity=50)
        np.testing.assert_array_equal(
            compute_cell_keys(pos, 30.0), grid.cell_keys(pos)
        )

    def test_out_of_extent_rejected(self):
        with pytest.raises(ValueError):
            compute_cell_keys(np.array([[1e6, 0, 0]]), 30.0)


class TestSortedGrid:
    def test_occupancy_matches_serial(self, rng):
        n = 200
        pos = _random_points(rng, n)
        serial = UniformGrid(25.0, capacity=n)
        serial.insert_batch(np.arange(n), pos)
        sg = SortedGrid(25.0)
        sg.build(np.arange(n), pos)
        assert sg.occupancy() == serial.occupancy()

    def test_pairs_match_serial(self, rng):
        n = 150
        pos = _random_points(rng, n, span=250.0)
        serial = UniformGrid(40.0, capacity=n)
        serial.insert_batch(np.arange(n), pos)
        sg = SortedGrid(40.0)
        sg.build(np.arange(n), pos)
        i, j = sg.candidate_pairs()
        assert _pair_set(i, j) == set(serial.candidate_pairs())

    def test_empty_cells_no_pairs(self):
        sg = SortedGrid(10.0)
        sg.build(np.array([0]), np.array([[0.0, 0.0, 0.0]]))
        i, j = sg.candidate_pairs()
        assert len(i) == 0

    def test_requires_build(self):
        sg = SortedGrid(10.0)
        with pytest.raises(RuntimeError, match="not built"):
            sg.candidate_pairs()

    def test_pair_order_normalised(self, rng):
        n = 80
        pos = _random_points(rng, n, span=150.0)
        sg = SortedGrid(50.0)
        sg.build(np.arange(n), pos)
        i, j = sg.candidate_pairs()
        assert np.all(i < j)

    def test_dense_cell_fallback(self, rng):
        """More than _DENSE_CELL_LIMIT objects in one cell exercises the
        per-cell fallback path."""
        n = 150
        pos = rng.uniform(0.0, 5.0, size=(n, 3))  # all in one 30 km cell
        sg = SortedGrid(30.0)
        sg.build(np.arange(n), pos)
        i, j = sg.candidate_pairs()
        assert len(i) == n * (n - 1) // 2

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_completeness_property(self, seed):
        rng = np.random.default_rng(seed)
        n = 30
        cell = 45.0
        pos = rng.uniform(-150, 150, size=(n, 3))
        sg = SortedGrid(cell)
        sg.build(np.arange(n), pos)
        pairs = _pair_set(*sg.candidate_pairs())
        for a, b in itertools.combinations(range(n), 2):
            if np.linalg.norm(pos[a] - pos[b]) <= cell:
                assert (a, b) in pairs


class TestVectorHashGrid:
    def test_occupancy_matches_serial(self, rng):
        n = 200
        pos = _random_points(rng, n)
        serial = UniformGrid(25.0, capacity=n)
        serial.insert_batch(np.arange(n), pos)
        vg = VectorHashGrid(25.0, capacity=n)
        vg.build(np.arange(n), pos)
        assert vg.occupancy() == serial.occupancy()

    def test_pairs_match_sorted_grid(self, rng):
        n = 150
        pos = _random_points(rng, n, span=250.0)
        sg = SortedGrid(40.0)
        sg.build(np.arange(n), pos)
        vg = VectorHashGrid(40.0, capacity=n)
        vg.build(np.arange(n), pos)
        assert _pair_set(*vg.candidate_pairs()) == _pair_set(*sg.candidate_pairs())

    def test_lookup_hits_and_misses(self, rng):
        n = 60
        pos = _random_points(rng, n)
        vg = VectorHashGrid(30.0, capacity=n)
        vg.build(np.arange(n), pos)
        keys = compute_cell_keys(pos, 30.0)
        slots = vg.lookup(keys)
        assert (slots >= 0).all()
        assert (vg.table_keys[slots] == keys).all()
        # A key that cannot exist (outside any occupied coordinate) misses.
        missing = vg.lookup(np.array([keys.max() + np.uint64(12345)]))
        assert missing[0] == -1

    def test_round_counters(self, rng):
        n = 100
        pos = _random_points(rng, n)
        vg = VectorHashGrid(30.0, capacity=n)
        vg.build(np.arange(n), pos)
        assert vg.insert_rounds >= 1
        assert vg.attach_rounds >= 1
        # Attach rounds equal the deepest cell occupancy.
        deepest = max(len(m) for m in vg.occupancy().values())
        assert vg.attach_rounds == deepest

    def test_capacity_enforced(self, rng):
        vg = VectorHashGrid(30.0, capacity=3)
        with pytest.raises(RuntimeError, match="exceeds grid capacity"):
            vg.build(np.arange(5), _random_points(rng, 5))

    def test_empty_build_pairs(self):
        vg = VectorHashGrid(30.0, capacity=4)
        i, j = vg.candidate_pairs()
        assert len(i) == 0

    def test_single_dense_cell(self, rng):
        n = 90
        pos = rng.uniform(0.0, 4.0, size=(n, 3))
        vg = VectorHashGrid(30.0, capacity=n)
        vg.build(np.arange(n), pos)
        i, j = vg.candidate_pairs()
        assert len(i) == n * (n - 1) // 2
        assert vg.attach_rounds == n

    def test_validation(self):
        with pytest.raises(ValueError):
            VectorHashGrid(0.0, capacity=4)
        with pytest.raises(ValueError):
            VectorHashGrid(30.0, capacity=0)
        with pytest.raises(ValueError):
            SortedGrid(-1.0)


class TestThreeWayEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_all_grid_implementations_agree(self, seed):
        """The paper's CPU hash grid, the GPU CAS-round emulation, and the
        sort-based grouping must produce identical candidate sets."""
        rng = np.random.default_rng(seed)
        n = 60
        cell = 35.0
        pos = rng.uniform(-250, 250, size=(n, 3))
        ids = np.arange(n)

        serial = UniformGrid(cell, capacity=n)
        serial.insert_batch(ids, pos)
        sg = SortedGrid(cell)
        sg.build(ids, pos)
        vg = VectorHashGrid(cell, capacity=n)
        vg.build(ids, pos)

        ref = set(serial.candidate_pairs())
        assert _pair_set(*sg.candidate_pairs()) == ref
        assert _pair_set(*vg.candidate_pairs()) == ref
        assert sg.occupancy() == vg.occupancy() == serial.occupancy()


def _pair_step_set(i, j, s):
    return set(zip(i.tolist(), j.tolist(), s.tolist()))


class TestMultiStepBuild:
    """Fused multi-step (round) builds: one grid covering p sampling steps."""

    def test_step_cell_keys_shape_and_validation(self, rng):
        pos = rng.uniform(-300, 300, size=(4, 25, 3))
        keys = compute_step_cell_keys(pos, 30.0)
        assert keys.shape == (100,)
        with pytest.raises(ValueError, match=r"\(p, n, 3\)"):
            compute_step_cell_keys(pos[0], 30.0)
        with pytest.raises(ValueError, match="too fine"):
            compute_step_cell_keys(pos, 0.5)
        with pytest.raises(ValueError, match="simulation cube"):
            compute_step_cell_keys(np.full((2, 2, 3), 1e6), 30.0)

    def test_fused_equals_per_step_sorted(self, rng):
        """The fused round emits exactly the union of per-step pair sets,
        each labelled with its step."""
        n, p, cell = 120, 6, 40.0
        pos = rng.uniform(-250, 250, size=(p, n, 3))
        ids = np.arange(n)
        fused = SortedGrid(cell)
        fused.build_rounds(ids, pos)
        fi, fj, fs = fused.candidate_pair_steps()
        expected = set()
        for step in range(p):
            sg = SortedGrid(cell)
            sg.build(ids, pos[step])
            i, j = sg.candidate_pairs()
            expected |= {(a, b, step) for a, b in zip(i.tolist(), j.tolist())}
        assert _pair_step_set(fi, fj, fs) == expected

    def test_fused_hashgrid_matches_fused_sorted(self, rng):
        n, p, cell = 80, 5, 35.0
        pos = rng.uniform(-200, 200, size=(p, n, 3))
        ids = np.arange(n)
        sg = SortedGrid(cell)
        sg.build_rounds(ids, pos)
        vg = VectorHashGrid(cell, capacity=p * n)
        vg.build_rounds(ids, pos)
        assert _pair_step_set(*vg.candidate_pair_steps()) == _pair_step_set(
            *sg.candidate_pair_steps()
        )

    def test_no_cross_step_pairs(self, rng):
        """A satellite stationary across steps must never pair with itself,
        and two satellites co-located at *different* steps never pair."""
        # Satellite 0 sits at the origin at both steps; satellite 1 is at
        # the origin only at step 1 and far away at step 0.
        pos = np.array(
            [
                [[0.0, 0.0, 0.0], [500.0, 500.0, 500.0]],  # step 0
                [[0.0, 0.0, 0.0], [0.1, 0.1, 0.1]],  # step 1
            ]
        )
        sg = SortedGrid(30.0)
        sg.build_rounds(np.array([0, 1]), pos)
        i, j, s = sg.candidate_pair_steps()
        assert _pair_step_set(i, j, s) == {(0, 1, 1)}

    def test_single_step_round_equals_plain_build(self, rng):
        n = 60
        pos = rng.uniform(-150, 150, size=(n, 3))
        plain = SortedGrid(45.0)
        plain.build(np.arange(n), pos)
        fused = SortedGrid(45.0)
        fused.build_rounds(np.arange(n), pos[None, :, :])
        pi, pj = plain.candidate_pairs()
        fi, fj, fs = fused.candidate_pair_steps()
        assert _pair_set(fi, fj) == _pair_set(pi, pj)
        assert (fs == 0).all()

    def test_candidate_pairs_refuses_multi_step(self, rng):
        sg = SortedGrid(30.0)
        sg.build_rounds(np.arange(10), rng.uniform(-100, 100, size=(3, 10, 3)))
        with pytest.raises(RuntimeError, match="candidate_pair_steps"):
            sg.candidate_pairs()
        vg = VectorHashGrid(30.0, capacity=30)
        vg.build_rounds(np.arange(10), rng.uniform(-100, 100, size=(3, 10, 3)))
        with pytest.raises(RuntimeError, match="candidate_pair_steps"):
            vg.candidate_pairs()

    def test_hashgrid_round_capacity_enforced(self, rng):
        vg = VectorHashGrid(30.0, capacity=10)
        with pytest.raises(RuntimeError, match="exceeds grid capacity"):
            vg.build_rounds(np.arange(4), rng.uniform(-100, 100, size=(3, 4, 3)))

    def test_pair_steps_on_single_step_build(self, rng):
        """candidate_pair_steps also works after a plain build (step 0)."""
        n = 40
        pos = rng.uniform(-100, 100, size=(n, 3))
        vg = VectorHashGrid(40.0, capacity=n)
        vg.build(np.arange(n), pos)
        i, j, s = vg.candidate_pair_steps()
        assert (s == 0).all()
        sg = SortedGrid(40.0)
        sg.build(np.arange(n), pos)
        assert _pair_set(i, j) == _pair_set(*sg.candidate_pairs())

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_fused_differential_property(self, seed):
        """Property: for random rounds, fused emission == union of per-step
        emissions for both implementations."""
        rng = np.random.default_rng(seed)
        n, p, cell = 40, 4, 45.0
        pos = rng.uniform(-150, 150, size=(p, n, 3))
        ids = np.arange(n)
        expected = set()
        for step in range(p):
            sg = SortedGrid(cell)
            sg.build(ids, pos[step])
            i, j = sg.candidate_pairs()
            expected |= {(a, b, step) for a, b in zip(i.tolist(), j.tolist())}
        fused_sorted = SortedGrid(cell)
        fused_sorted.build_rounds(ids, pos)
        assert _pair_step_set(*fused_sorted.candidate_pair_steps()) == expected
        fused_hash = VectorHashGrid(cell, capacity=p * n)
        fused_hash.build_rounds(ids, pos)
        assert _pair_step_set(*fused_hash.candidate_pair_steps()) == expected


class TestScipyOracle:
    """Independent oracle: scipy's cKDTree pair query must be a subset of
    the grid's candidate emission (the grid's 27-cell neighbourhood covers
    strictly more than the sphere of one cell size)."""

    def test_grid_covers_ckdtree_pairs(self, rng):
        from scipy.spatial import cKDTree

        n = 400
        cell = 35.0
        pos = rng.uniform(-600, 600, size=(n, 3))
        sg = SortedGrid(cell)
        sg.build(np.arange(n), pos)
        grid_pairs = _pair_set(*sg.candidate_pairs())
        tree_pairs = set(map(tuple, cKDTree(pos).query_pairs(cell)))
        tree_pairs = {(min(a, b), max(a, b)) for a, b in tree_pairs}
        assert tree_pairs <= grid_pairs

    def test_grid_emits_nothing_beyond_neighbourhood(self, rng):
        """Converse bound: no candidate pair is farther apart than the
        neighbourhood diagonal 2*sqrt(3)*cell."""
        from scipy.spatial import cKDTree

        n = 300
        cell = 40.0
        pos = rng.uniform(-400, 400, size=(n, 3))
        sg = SortedGrid(cell)
        sg.build(np.arange(n), pos)
        i, j = sg.candidate_pairs()
        if len(i):
            d = np.linalg.norm(pos[i] - pos[j], axis=1)
            assert d.max() <= 2.0 * np.sqrt(3.0) * cell + 1e-9
