"""Conjunction map: packing, dedup semantics, sizing, overflow."""
from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.conjmap import (
    MAX_OBJECTS,
    MAX_STEPS,
    ConjunctionMap,
    ConjunctionMapFullError,
    pack_pair_key,
    unpack_pair_key,
)
from repro.spatial.hashmap import HashMapFullError


class TestPairKey:
    def test_round_trip_scalar(self):
        key = pack_pair_key(3, 77, 12)
        assert unpack_pair_key(key) == (3, 77, 12)

    def test_round_trip_array(self, rng):
        i = rng.integers(0, 1000, 50)
        j = i + rng.integers(1, 1000, 50)
        s = rng.integers(0, 500, 50)
        keys = pack_pair_key(i, j, s)
        bi, bj, bs = unpack_pair_key(keys)
        np.testing.assert_array_equal(bi, i)
        np.testing.assert_array_equal(bj, j)
        np.testing.assert_array_equal(bs, s)

    def test_order_enforced(self):
        with pytest.raises(ValueError):
            pack_pair_key(5, 5, 0)
        with pytest.raises(ValueError):
            pack_pair_key(7, 3, 0)

    def test_range_enforced(self):
        with pytest.raises(ValueError):
            pack_pair_key(0, MAX_OBJECTS, 0)
        with pytest.raises(ValueError):
            pack_pair_key(0, 1, MAX_STEPS)

    @settings(max_examples=100, deadline=None)
    @given(
        i=st.integers(min_value=0, max_value=MAX_OBJECTS - 2),
        j=st.integers(min_value=1, max_value=MAX_OBJECTS - 1),
        s=st.integers(min_value=0, max_value=MAX_STEPS - 1),
    )
    def test_injective_property(self, i, j, s):
        if i >= j:
            i, j = j, i + 1 if j == i else i
        if i >= j:
            return
        assert unpack_pair_key(pack_pair_key(i, j, s)) == (i, j, s)


class TestScalarInsert:
    def test_insert_and_dedupe(self):
        cm = ConjunctionMap(64)
        assert cm.insert(1, 2, 0) is True
        assert cm.insert(2, 1, 0) is False  # same unordered pair, same step
        assert cm.insert(1, 2, 1) is True  # different step is a new record
        assert cm.size == 2

    def test_records_sorted(self):
        cm = ConjunctionMap(64)
        cm.insert(5, 6, 2)
        cm.insert(1, 2, 0)
        i, j, s = cm.records()
        assert list(zip(i, j, s)) == [(1, 2, 0), (5, 6, 2)]

    def test_unique_pairs(self):
        cm = ConjunctionMap(64)
        cm.insert(1, 2, 0)
        cm.insert(1, 2, 5)
        cm.insert(3, 4, 1)
        i, j = cm.unique_pairs()
        assert list(zip(i, j)) == [(1, 2), (3, 4)]

    def test_overflow_message(self):
        cm = ConjunctionMap(2)
        cm.insert(0, 1, 0)
        cm.insert(0, 1, 1)
        with pytest.raises(HashMapFullError, match="Extra-P"):
            cm.insert(0, 1, 2)


class TestBatchInsert:
    def test_batch_dedupes_within_step(self):
        cm = ConjunctionMap(64)
        i = np.array([1, 2, 1])
        j = np.array([2, 1, 2])
        added = cm.insert_batch(i, j, step=0)
        assert added == 1
        assert cm.size == 1

    def test_batch_and_scalar_mix(self):
        cm = ConjunctionMap(64)
        cm.insert(1, 2, 0)
        cm.insert_batch(np.array([3]), np.array([4]), step=1)
        i, j, s = cm.records()
        assert list(zip(i, j, s)) == [(1, 2, 0), (3, 4, 1)]

    def test_batch_overflow(self):
        cm = ConjunctionMap(4)
        i = np.arange(0, 10)
        j = i + 1
        with pytest.raises(HashMapFullError):
            cm.insert_batch(i, j, step=0)

    def test_empty_batch(self):
        cm = ConjunctionMap(8)
        assert cm.insert_batch(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 0) == 0
        i, j, s = cm.records()
        assert len(i) == 0

    def test_memory_and_load(self):
        cm = ConjunctionMap(100)
        cm.insert_batch(np.array([1, 2]), np.array([2, 3]), 0)
        assert cm.memory_bytes == 1600
        assert cm.load_factor == pytest.approx(0.02)

    def test_steps_kept_separate(self):
        cm = ConjunctionMap(64)
        for step in range(5):
            cm.insert_batch(np.array([1]), np.array([2]), step)
        assert cm.size == 5
        i, j, s = cm.records()
        np.testing.assert_array_equal(s, np.arange(5))

    def test_per_record_step_array(self):
        """A fused round inserts pairs from several steps in one batch."""
        cm = ConjunctionMap(64)
        added = cm.insert_batch(
            np.array([1, 3, 1]), np.array([2, 4, 2]), np.array([0, 0, 1])
        )
        assert added == 3
        i, j, s = cm.records()
        assert list(zip(i, j, s)) == [(1, 2, 0), (3, 4, 0), (1, 2, 1)]

    def test_step_array_deduped_within_batch(self):
        cm = ConjunctionMap(64)
        added = cm.insert_batch(
            np.array([1, 2, 1]), np.array([2, 1, 2]), np.array([7, 7, 7])
        )
        assert added == 1
        assert cm.size == 1

    def test_overflow_error_type(self):
        cm = ConjunctionMap(4)
        with pytest.raises(ConjunctionMapFullError):
            cm.insert_batch(np.arange(0, 10), np.arange(1, 11), step=0)
        # The specific type still satisfies the generic hashmap error.
        assert issubclass(ConjunctionMapFullError, HashMapFullError)

    def test_failed_batch_leaves_map_unchanged(self):
        cm = ConjunctionMap(4)
        cm.insert_batch(np.array([1, 3]), np.array([2, 4]), step=0)
        with pytest.raises(ConjunctionMapFullError):
            cm.insert_batch(np.arange(10, 20), np.arange(20, 30), step=1)
        assert cm.size == 2
        i, j, s = cm.records()
        assert list(zip(i, j, s)) == [(1, 2, 0), (3, 4, 0)]


class TestReplayIdempotence:
    """The overflow→regrow→replay contract: re-offering records that a
    regrow already copied must never duplicate them (the seed code
    concatenated the CAS and batch paths in records() without dedup)."""

    def test_batch_then_cas_replay_dedupes(self):
        cm = ConjunctionMap(64)
        # Regrow copied a completed step over via the batch path...
        cm.insert_batch(np.array([1, 3, 5]), np.array([2, 4, 6]), step=0)
        # ...then the interrupted step is replayed via CAS inserts.
        for a, b in [(1, 2), (3, 4), (5, 6)]:
            cm.insert(a, b, 0)
        i, j, s = cm.records()
        assert list(zip(i, j, s)) == [(1, 2, 0), (3, 4, 0), (5, 6, 0)]
        assert cm.size == 3
        assert cm.load_factor == pytest.approx(3 / 64)

    def test_repeated_batches_dedupe(self):
        cm = ConjunctionMap(64)
        for _ in range(3):  # a replayed fused round re-offers its batch
            cm.insert_batch(np.array([1, 3]), np.array([2, 4]), np.array([0, 1]))
        assert cm.size == 2
        i, j, s = cm.records()
        assert list(zip(i, j, s)) == [(1, 2, 0), (3, 4, 1)]

    def test_unique_pairs_after_mixed_replay(self):
        cm = ConjunctionMap(64)
        cm.insert_batch(np.array([1, 1]), np.array([2, 2]), np.array([0, 1]))
        cm.insert(1, 2, 0)
        cm.insert(1, 2, 1)
        cm.insert(3, 4, 0)
        i, j = cm.unique_pairs()
        assert list(zip(i, j)) == [(1, 2), (3, 4)]
        assert cm.size == 3


class TestConcurrency:
    def test_threaded_inserts_lose_nothing(self):
        import threading

        cm = ConjunctionMap(4096)
        n_threads = 6
        # Overlapping workloads: every thread inserts the same 300 records.
        records = [(k, k + 1 + (k % 7), k % 50) for k in range(300)]
        barrier = threading.Barrier(n_threads)

        def worker():
            barrier.wait()
            for i, j, s in records:
                cm.insert(i, j, s)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        expected = {(min(i, j), max(i, j), s) for i, j, s in records}
        ri, rj, rs = cm.records()
        assert set(zip(ri.tolist(), rj.tolist(), rs.tolist())) == expected
        assert cm.size == len(expected)
