"""Entry pool: allocation, batch reservation, chain walking, thread safety."""
from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.constants import NULL_INDEX
from repro.spatial.entries import EntryPool


class TestAllocation:
    def test_sequential_indices(self):
        pool = EntryPool(4)
        idx = [pool.allocate(sat_id=k, position=np.array([1.0 * k, 0, 0])) for k in range(3)]
        assert idx == [0, 1, 2]
        assert pool.used == 3
        assert pool.sat_id[1] == 1
        np.testing.assert_allclose(pool.position[2], [2.0, 0, 0])

    def test_exhaustion_raises(self):
        pool = EntryPool(2)
        pool.allocate(0, np.zeros(3))
        pool.allocate(1, np.zeros(3))
        with pytest.raises(RuntimeError, match="exhausted"):
            pool.allocate(2, np.zeros(3))

    def test_batch_allocation(self):
        pool = EntryPool(10)
        ids = np.array([5, 6, 7])
        pos = np.arange(9.0).reshape(3, 3)
        idx = pool.allocate_batch(ids, pos)
        np.testing.assert_array_equal(idx, [0, 1, 2])
        np.testing.assert_array_equal(pool.sat_id[:3], ids)
        np.testing.assert_allclose(pool.position[:3], pos)

    def test_batch_exhaustion(self):
        pool = EntryPool(2)
        with pytest.raises(RuntimeError):
            pool.allocate_batch(np.arange(3), np.zeros((3, 3)))

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            EntryPool(0)

    def test_reset_recycles(self):
        pool = EntryPool(3)
        pool.allocate(1, np.ones(3))
        pool.reset()
        assert pool.used == 0
        assert pool.allocate(2, np.zeros(3)) == 0
        assert pool.sat_id[0] == 2

    def test_memory_bytes(self):
        pool = EntryPool(10)
        assert pool.memory_bytes == 10 * (8 + 8 + 8 + 24)

    def test_concurrent_allocation_unique_indices(self):
        pool = EntryPool(800)
        n_threads = 8
        grabbed: "list[list[int]]" = [[] for _ in range(n_threads)]

        def worker(tid: int) -> None:
            for k in range(100):
                grabbed[tid].append(pool.allocate(tid * 1000 + k, np.zeros(3)))

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        flat = sorted(x for g in grabbed for x in g)
        assert flat == list(range(800))


class TestChains:
    def test_chain_walk(self):
        pool = EntryPool(4)
        a = pool.allocate(10, np.zeros(3))
        b = pool.allocate(11, np.zeros(3))
        c = pool.allocate(12, np.zeros(3))
        pool.next[c] = b
        pool.next[b] = a
        assert pool.chain(c) == [c, b, a]
        assert pool.chain(NULL_INDEX) == []

    def test_cycle_detected(self):
        pool = EntryPool(2)
        a = pool.allocate(0, np.zeros(3))
        b = pool.allocate(1, np.zeros(3))
        pool.next[a] = b
        pool.next[b] = a
        with pytest.raises(RuntimeError, match="cycle"):
            pool.chain(a)
