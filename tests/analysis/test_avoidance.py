"""Avoidance maneuver sizing."""
from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.avoidance import (
    apply_maneuver,
    miss_distance_after,
    size_avoidance_maneuver,
)
from repro.orbits.elements import OrbitalElementsArray
from repro.orbits.propagation import Propagator


class TestApplyManeuver:
    def test_zero_burn_is_identity(self, crossing_pair):
        el = crossing_pair[0]
        burned = apply_maneuver(el, burn_time_s=100.0, delta_v_kms=np.zeros(3))
        assert burned.a == pytest.approx(el.a, rel=1e-9)
        assert burned.e == pytest.approx(el.e, abs=1e-9)
        # Trajectory is unchanged.
        pop_a = OrbitalElementsArray.from_elements([el])
        pop_b = OrbitalElementsArray.from_elements([burned])
        np.testing.assert_allclose(
            Propagator(pop_a).positions(500.0), Propagator(pop_b).positions(500.0), atol=1e-5
        )

    def test_prograde_burn_raises_orbit(self, crossing_pair):
        el = crossing_pair[0]
        from repro.analysis.avoidance import along_track_direction

        direction = along_track_direction(el, 100.0)
        burned = apply_maneuver(el, 100.0, 0.001 * direction)  # 1 m/s prograde
        assert burned.a > el.a
        # da = 2 a dv / v: about 1.85 km per m/s at a=7000 km, v=7.55 km/s.
        assert burned.a - el.a == pytest.approx(1.85, abs=0.1)

    def test_trajectory_continuous_at_burn(self, crossing_pair):
        """Position is unchanged at the burn instant (impulsive burn)."""
        el = crossing_pair[0]
        from repro.analysis.avoidance import along_track_direction

        t_burn = 250.0
        burned = apply_maneuver(el, t_burn, 0.002 * along_track_direction(el, t_burn))
        pop_a = OrbitalElementsArray.from_elements([el])
        pop_b = OrbitalElementsArray.from_elements([burned])
        np.testing.assert_allclose(
            Propagator(pop_a).positions(t_burn),
            Propagator(pop_b).positions(t_burn),
            atol=1e-4,
        )


class TestMissDistance:
    def test_reproduces_screened_pca(self, crossing_pair):
        d = miss_distance_after(crossing_pair[0], crossing_pair[1], tca_s=0.0)
        assert d == pytest.approx(1.22, abs=0.01)


class TestSizing:
    def test_achieves_clearance(self, crossing_pair):
        plan = size_avoidance_maneuver(
            crossing_pair[0], crossing_pair[1],
            tca_s=0.0, burn_time_s=-5700.0, clearance_km=5.0,
        )
        assert plan.miss_before_km == pytest.approx(1.22, abs=0.01)
        assert plan.miss_after_km >= 5.0
        assert plan.delta_v_cms < 1000.0  # well under 10 m/s

    def test_earlier_burn_is_cheaper(self, crossing_pair):
        """The classic lead-time trade: burning two orbits earlier needs
        less delta-v than burning half an orbit before the TCA."""
        late = size_avoidance_maneuver(
            crossing_pair[0], crossing_pair[1],
            tca_s=0.0, burn_time_s=-2900.0, clearance_km=5.0,
        )
        early = size_avoidance_maneuver(
            crossing_pair[0], crossing_pair[1],
            tca_s=0.0, burn_time_s=-11600.0, clearance_km=5.0,
        )
        assert abs(early.delta_v_kms) < abs(late.delta_v_kms)

    def test_validation(self, crossing_pair):
        with pytest.raises(ValueError):
            size_avoidance_maneuver(
                crossing_pair[0], crossing_pair[1], tca_s=0.0, burn_time_s=10.0,
                clearance_km=5.0,
            )
        with pytest.raises(ValueError):
            size_avoidance_maneuver(
                crossing_pair[0], crossing_pair[1], tca_s=0.0, burn_time_s=-100.0,
                clearance_km=0.0,
            )

    def test_impossible_clearance_raises(self, crossing_pair):
        with pytest.raises(RuntimeError, match="no along-track burn"):
            size_avoidance_maneuver(
                crossing_pair[0], crossing_pair[1],
                tca_s=0.0, burn_time_s=-60.0, clearance_km=500.0,
                max_dv_kms=1e-4,
            )
