"""Hollow-sphere complexity machinery (Section III-B)."""
from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.complexity import (
    decompose_shells,
    predicted_candidates_per_step,
)
from repro.orbits.elements import KeplerElements, OrbitalElementsArray
from repro.population.generator import generate_population


def test_counts_partition_population(small_population):
    dec = decompose_shells(small_population, cell_size_km=9.8)
    assert int(dec.counts.sum()) == len(small_population)
    assert dec.naive_pairs == len(small_population) * (len(small_population) - 1) // 2


def test_bound_far_below_naive_for_spread_population(small_population):
    dec = decompose_shells(small_population, cell_size_km=9.8)
    assert dec.total_pair_bound < dec.naive_pairs
    assert dec.reduction_factor > 10.0


def test_single_shell_keeps_quadratic_character():
    """All satellites in one shell: the bound stays quadratic in n_i —
    exactly the paper's point that the complexity class does not improve
    within a sphere."""
    els = [
        KeplerElements(a=7000.0, e=0.001, i=0.1 * k % 3, raan=0.2 * k % 6, argp=0.0, m0=0.0)
        for k in range(1, 41)
    ]
    pop = OrbitalElementsArray.from_elements(els)
    dec_small = decompose_shells(pop.subset(np.arange(20)), cell_size_km=9.8)
    dec_full = decompose_shells(pop, cell_size_km=9.8)
    ratio = dec_full.total_pair_bound / dec_small.total_pair_bound
    assert ratio == pytest.approx(4.0, rel=0.05)  # (40/20)^2


def test_bigger_cells_raise_the_bound(small_population):
    tight = decompose_shells(small_population, cell_size_km=9.8)
    coarse = decompose_shells(small_population, cell_size_km=72.2)
    assert coarse.total_pair_bound > tight.total_pair_bound


def test_per_step_prediction_positive_and_scales():
    pop_small = generate_population(500, seed=5)
    pop_big = generate_population(2000, seed=5)
    p_small = predicted_candidates_per_step(pop_small, cell_size_km=9.8)
    p_big = predicted_candidates_per_step(pop_big, cell_size_km=9.8)
    assert p_small > 0.0
    # Quadratic in n to first order: 4x objects -> ~16x predicted pairs.
    assert p_big / p_small == pytest.approx(16.0, rel=0.5)


def test_validation(small_population):
    with pytest.raises(ValueError):
        decompose_shells(small_population, cell_size_km=0.0)
    with pytest.raises(ValueError):
        decompose_shells(small_population, cell_size_km=9.8, shell_width_km=0.0)
