"""Collision probability and risk ranking."""
from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.poc import collision_probability, rank_conjunctions
from repro.detection.types import ScreeningResult
from repro.parallel.backend import PhaseTimer


class TestCollisionProbability:
    def test_head_on_with_huge_hard_body(self):
        # R >> sigma and d = 0: collision nearly certain.
        assert collision_probability(0.0, sigma_km=0.1, hard_body_radius_km=2.0) > 0.999

    def test_head_on_analytic_value(self):
        # At d=0 the Rice CDF reduces to the Rayleigh CDF:
        # P = 1 - exp(-R^2 / (2 sigma^2)).
        sigma, radius = 0.5, 0.3
        expected = 1.0 - math.exp(-(radius**2) / (2 * sigma**2))
        assert collision_probability(0.0, sigma, radius) == pytest.approx(expected, rel=1e-8)

    def test_far_miss_is_negligible(self):
        assert collision_probability(10.0, sigma_km=0.5, hard_body_radius_km=0.02) < 1e-12

    def test_monotone_in_miss_distance(self):
        probs = [collision_probability(d, 0.5, 0.05) for d in (0.0, 0.5, 1.0, 2.0, 4.0)]
        assert all(a > b for a, b in zip(probs, probs[1:]))

    def test_monotone_in_hard_body_radius(self):
        p_small = collision_probability(0.5, 0.5, 0.01)
        p_big = collision_probability(0.5, 0.5, 0.10)
        assert p_big > p_small

    def test_dilution_region_exists(self):
        """The famous dilution effect: for fixed miss distance, P_c peaks
        at an intermediate sigma and *decreases* for very large
        uncertainty."""
        d, radius = 1.0, 0.02
        sigmas = np.geomspace(0.01, 50.0, 40)
        probs = np.array([collision_probability(d, float(s), radius) for s in sigmas])
        peak = int(np.argmax(probs))
        assert 0 < peak < len(sigmas) - 1
        assert probs[-1] < probs[peak] / 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            collision_probability(-1.0, 0.5, 0.02)
        with pytest.raises(ValueError):
            collision_probability(1.0, 0.0, 0.02)
        with pytest.raises(ValueError):
            collision_probability(1.0, 0.5, 0.0)

    @settings(max_examples=60, deadline=None)
    @given(
        d=st.floats(min_value=0.0, max_value=5.0),
        sigma=st.floats(min_value=0.05, max_value=2.0),
        radius=st.floats(min_value=0.005, max_value=0.5),
    )
    def test_probability_bounds_property(self, d, sigma, radius):
        p = collision_probability(d, sigma, radius)
        assert 0.0 <= p <= 1.0


class TestRanking:
    def _result(self):
        return ScreeningResult(
            method="grid",
            backend="serial",
            i=np.array([1, 3, 5]),
            j=np.array([2, 4, 6]),
            tca_s=np.array([100.0, 200.0, 300.0]),
            pca_km=np.array([1.5, 0.1, 4.0]),
            candidates_refined=3,
            timers=PhaseTimer(),
        )

    def test_sorted_by_descending_risk(self):
        entries = rank_conjunctions(self._result())
        assert [e.pca_km for e in entries] == [0.1, 1.5, 4.0]
        assert entries[0].probability >= entries[1].probability >= entries[2].probability

    def test_top_k(self):
        entries = rank_conjunctions(self._result(), top=1)
        assert len(entries) == 1
        assert entries[0].i == 3

    def test_empty_result(self):
        from repro.detection.types import empty_result

        assert rank_conjunctions(empty_result("grid", "serial")) == []
