"""Gabbard diagram data."""
from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.gabbard import gabbard_data
from repro.constants import R_EARTH
from repro.orbits.elements import KeplerElements
from repro.population.scenarios import fragmentation_cloud


@pytest.fixture(scope="module")
def cloud():
    parent = KeplerElements(a=R_EARTH + 780.0, e=0.002, i=1.2, raan=0.1, argp=0.4, m0=0.0)
    return fragmentation_cloud(parent, 250, dv_scale_kms=0.1, seed=13)


def test_series_lengths(cloud):
    data = gabbard_data(cloud)
    assert len(data) == 250
    assert data.period_min.shape == data.apogee_alt_km.shape == data.perigee_alt_km.shape


def test_apogee_above_perigee(cloud):
    data = gabbard_data(cloud)
    assert np.all(data.apogee_alt_km >= data.perigee_alt_km - 1e-9)


def test_x_shape_pinned_at_breakup_altitude(cloud):
    """The defining Gabbard feature: one apsis of every fragment stays
    near the breakup altitude (~780 km here)."""
    data = gabbard_data(cloud)
    pin = data.pinned_altitude_km
    assert pin == pytest.approx(780.0, abs=60.0)
    # Each fragment has at least one apsis near the pin.
    near_pin = np.minimum(
        np.abs(data.apogee_alt_km - pin), np.abs(data.perigee_alt_km - pin)
    )
    assert np.percentile(near_pin, 90) < 100.0


def test_period_correlates_with_apogee(cloud):
    """Upper-right arm: longer periods go with higher apogees."""
    data = gabbard_data(cloud)
    corr = np.corrcoef(data.period_min, data.apogee_alt_km)[0, 1]
    assert corr > 0.9


def test_ascii_plot_renders(cloud):
    data = gabbard_data(cloud)
    text = data.ascii_plot()
    assert "o" in text and "." in text
    assert "min" in text
    assert len(text.splitlines()) >= 20
