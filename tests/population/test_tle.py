"""TLE parsing and formatting."""
from __future__ import annotations

import math

import pytest

from repro.population.tle import TLEError, format_tle, parse_tle, parse_tle_file

# ISS (ZARYA) historic record (checksums valid).
ISS_L1 = "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927"
ISS_L2 = "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537"


class TestParse:
    def test_iss_fields(self):
        norad, el = parse_tle(ISS_L1, ISS_L2)
        assert norad == 25544
        assert el.i == pytest.approx(math.radians(51.6416))
        assert el.raan == pytest.approx(math.radians(247.4627))
        assert el.e == pytest.approx(0.0006703)
        assert el.argp == pytest.approx(math.radians(130.5360))
        assert el.m0 == pytest.approx(math.radians(325.0288))
        # 15.72 rev/day -> a about 6720-6740 km.
        assert 6700 < el.a < 6760

    def test_checksum_failure(self):
        bad = ISS_L1[:-1] + "0"
        with pytest.raises(TLEError, match="checksum"):
            parse_tle(bad, ISS_L2)

    def test_checksum_can_be_skipped(self):
        bad = ISS_L1[:-1] + "0"
        norad, _ = parse_tle(bad, ISS_L2, validate_checksum=False)
        assert norad == 25544

    def test_line_number_check(self):
        with pytest.raises(TLEError, match="line numbers"):
            parse_tle(ISS_L2, ISS_L1)

    def test_mismatched_catalog_numbers(self):
        other = "1 00005U 58002B   00179.78495062  .00000023  00000-0  28098-4 0  4753"
        with pytest.raises(TLEError, match="catalog numbers differ"):
            parse_tle(other, ISS_L2)

    def test_short_line_rejected(self):
        with pytest.raises(TLEError):
            parse_tle("1 25544", ISS_L2)


class TestFormatRoundTrip:
    def test_round_trip_preserves_elements(self):
        _, el = parse_tle(ISS_L1, ISS_L2)
        text = format_tle(25544, el)
        l1, l2 = text.splitlines()
        norad, back = parse_tle(l1, l2)
        assert norad == 25544
        assert back.a == pytest.approx(el.a, rel=1e-7)
        assert back.e == pytest.approx(el.e, abs=1e-7)
        assert back.i == pytest.approx(el.i, abs=1e-6)
        assert back.raan == pytest.approx(el.raan, abs=1e-6)
        assert back.argp == pytest.approx(el.argp, abs=1e-6)
        assert back.m0 == pytest.approx(el.m0, abs=1e-6)

    def test_three_line_format_with_name(self):
        _, el = parse_tle(ISS_L1, ISS_L2)
        text = format_tle(25544, el, name="ISS (ZARYA)")
        assert text.splitlines()[0] == "ISS (ZARYA)"

    def test_norad_range(self):
        _, el = parse_tle(ISS_L1, ISS_L2)
        with pytest.raises(ValueError):
            format_tle(123456, el)


class TestParseFile:
    def test_mixed_file(self):
        text = "\n".join(["ISS (ZARYA)", ISS_L1, ISS_L2, "", "junk line"])
        records = parse_tle_file(text)
        assert len(records) == 1
        assert records[0][0] == 25544

    def test_generated_catalog_round_trip(self):
        from repro.population.generator import generate_population

        pop = generate_population(20, seed=2)
        text = "\n".join(format_tle(k, pop[k], name=f"SYNTH-{k}") for k in range(20))
        records = parse_tle_file(text)
        assert len(records) == 20
        for k, (norad, el) in enumerate(records):
            assert norad == k
            assert el.a == pytest.approx(pop[k].a, rel=1e-6)
