"""Flux-based residence fractions and shell densities."""
from __future__ import annotations

import numpy as np
import pytest

from repro.orbits.elements import KeplerElements, OrbitalElementsArray
from repro.orbits.propagation import Propagator
from repro.population.flux import residence_fractions, shell_density


def _pop(els):
    return OrbitalElementsArray.from_elements(els)


def _el(a, e):
    return KeplerElements(a=a, e=e, i=0.7, raan=0.3, argp=1.1, m0=0.2)


class TestResidenceFractions:
    def test_circular_orbit_single_bin(self):
        pop = _pop([_el(7000.0, 0.0)])
        edges = np.array([6800.0, 6950.0, 7050.0, 7200.0])
        fr = residence_fractions(pop, edges)
        np.testing.assert_allclose(fr, [[0.0, 1.0, 0.0]])

    def test_fractions_sum_to_one_when_covered(self):
        pop = _pop([_el(8000.0, 0.2), _el(7000.0, 0.01), _el(10000.0, 0.35)])
        edges = np.linspace(6000.0, 15000.0, 40)
        fr = residence_fractions(pop, edges)
        np.testing.assert_allclose(fr.sum(axis=1), 1.0, atol=1e-9)

    def test_apsis_dwell_dominates(self):
        """Kepler's second law: an eccentric orbit lingers near apogee."""
        a, e = 9000.0, 0.3
        pop = _pop([_el(a, e)])
        edges = np.array([a * (1 - e) - 1, a * (1 - e) + 500, a * (1 + e) - 500, a * (1 + e) + 1])
        fr = residence_fractions(pop, edges)[0]
        assert fr[2] > fr[0]  # more time in the apogee slice than perigee slice

    def test_matches_monte_carlo_sampling(self):
        """Residence fractions agree with direct time sampling."""
        el = _el(8500.0, 0.25)
        pop = _pop([el])
        edges = np.array([6000.0, 8000.0, 9000.0, 11000.0])
        fr = residence_fractions(pop, edges)[0]
        prop = Propagator(pop)
        ts = np.linspace(0.0, el.period, 4000, endpoint=False)
        radii = np.array([np.linalg.norm(prop.positions(float(t))[0]) for t in ts])
        sampled = np.histogram(radii, bins=edges)[0] / len(ts)
        np.testing.assert_allclose(fr, sampled, atol=0.01)

    def test_validation(self):
        pop = _pop([_el(7000.0, 0.0)])
        with pytest.raises(ValueError):
            residence_fractions(pop, np.array([7000.0]))
        with pytest.raises(ValueError):
            residence_fractions(pop, np.array([7000.0, 6000.0]))


class TestShellDensity:
    def test_counts_conserve_population(self):
        pop = _pop([_el(7000.0, 0.001), _el(7500.0, 0.01)])
        edges = np.linspace(6500.0, 8500.0, 21)
        counts, density = shell_density(pop, edges)
        # The e-floor clamp for near-circular orbits costs ~1e-7 in the sum.
        assert counts.sum() == pytest.approx(2.0, abs=1e-5)
        assert np.all(density >= 0.0)

    def test_density_profile_peaks_at_population_shell(self):
        from repro.population.generator import generate_population

        pop = generate_population(2000, seed=8)
        edges = np.linspace(6600.0, 43000.0, 80)
        counts, density = shell_density(pop, edges)
        peak_radius = edges[int(np.argmax(density))]
        # Spatial density peaks in the LEO shell band (Fig. 9's cluster,
        # compounded by the small inner-shell volumes).
        assert peak_radius < 7500.0
        # And the expected-count histogram peaks at the 6900-7100 cluster.
        count_peak = edges[int(np.argmax(counts))]
        assert count_peak < 7500.0