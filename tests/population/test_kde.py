"""Bivariate KDE: density correctness vs scipy, sampling behaviour."""
from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import gaussian_kde

from repro.population.kde import BivariateKDE


@pytest.fixture()
def blob_data(rng):
    a = rng.normal([0.0, 0.0], [1.0, 0.5], size=(300, 2))
    b = rng.normal([5.0, 3.0], [0.5, 0.2], size=(150, 2))
    return np.vstack([a, b])


class TestDensity:
    def test_matches_scipy_gaussian_kde(self, blob_data):
        ours = BivariateKDE(blob_data)
        ref = gaussian_kde(blob_data.T)  # scipy default = Scott, full cov
        query = np.array([[0.0, 0.0], [5.0, 3.0], [2.5, 1.5], [-3.0, 2.0]])
        np.testing.assert_allclose(ours.evaluate(query), ref(query.T), rtol=1e-10)

    def test_density_integrates_to_one(self, blob_data):
        kde = BivariateKDE(blob_data)
        xs, ys, dens = kde.grid_density((-6, 12), (-4, 8), resolution=120)
        dx = xs[1] - xs[0]
        dy = ys[1] - ys[0]
        assert dens.sum() * dx * dy == pytest.approx(1.0, abs=0.02)

    def test_density_peaks_near_clusters(self, blob_data):
        kde = BivariateKDE(blob_data)
        d = kde.evaluate(np.array([[0.0, 0.0], [10.0, 10.0]]))
        assert d[0] > 100 * d[1]

    def test_mode_estimate(self, blob_data):
        # Moderate bandwidth so the two clusters stay separated (plain
        # Scott over the inter-cluster spread merges them).
        kde = BivariateKDE(blob_data, bw_factor=0.3)
        mx, my = kde.mode_estimate()
        # The tight cluster at (5, 3) has the higher density peak
        # (150 / (0.5 * 0.2) beats 300 / (1.0 * 0.5)).
        assert abs(mx - 5.0) < 1.0 and abs(my - 3.0) < 1.0


class TestSampling:
    def test_sample_shape_and_distribution(self, blob_data, rng):
        kde = BivariateKDE(blob_data)
        samples = kde.sample(5000, rng)
        assert samples.shape == (5000, 2)
        # Sample means track the data means.
        np.testing.assert_allclose(samples.mean(axis=0), blob_data.mean(axis=0), atol=0.3)

    def test_sampling_deterministic_per_rng(self, blob_data):
        kde = BivariateKDE(blob_data)
        s1 = kde.sample(50, np.random.default_rng(7))
        s2 = kde.sample(50, np.random.default_rng(7))
        np.testing.assert_array_equal(s1, s2)

    def test_bw_factor_controls_spread(self, blob_data, rng):
        tight = BivariateKDE(blob_data, bw_factor=0.1)
        loose = BivariateKDE(blob_data, bw_factor=3.0)
        st = tight.sample(4000, np.random.default_rng(1))
        sl = loose.sample(4000, np.random.default_rng(1))
        assert sl.std(axis=0).sum() > st.std(axis=0).sum()


class TestValidation:
    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            BivariateKDE(np.zeros((5, 3)))
        with pytest.raises(ValueError):
            BivariateKDE(np.zeros((2, 2)))

    def test_bad_bandwidth(self, blob_data):
        with pytest.raises(ValueError):
            BivariateKDE(blob_data, bw_factor=0.0)

    def test_bad_sample_size(self, blob_data, rng):
        with pytest.raises(ValueError):
            BivariateKDE(blob_data).sample(0, rng)
