"""Seed catalog structure and the Table II population generator."""
from __future__ import annotations

import math

import numpy as np
import pytest

from repro.constants import TWO_PI
from repro.population.catalog_seed import (
    MAX_APOGEE,
    MIN_PERIGEE,
    clip_to_valid,
    seed_catalog,
)
from repro.population.generator import generate_population
from repro.population.kde import BivariateKDE


class TestSeedCatalog:
    def test_deterministic(self):
        np.testing.assert_array_equal(seed_catalog(), seed_catalog())

    def test_all_rows_valid(self):
        cat = seed_catalog()
        a, e = cat[:, 0], cat[:, 1]
        assert np.all(a * (1 - e) >= MIN_PERIGEE - 1e-9)
        assert np.all(a * (1 + e) <= MAX_APOGEE + 1e-9)
        assert np.all((e >= 0) & (e < 1))

    def test_fig9_structure_leo_dominates(self):
        """Fig. 9: the dominant mode is near a=7000 km, e=0.0025."""
        cat = seed_catalog()
        leo = (cat[:, 0] < 7100) & (cat[:, 0] > 6800)
        assert leo.mean() > 0.3  # dominant cluster
        assert np.median(cat[leo, 1]) < 0.01

    def test_contains_geo_and_heo(self):
        cat = seed_catalog()
        assert ((cat[:, 0] > 42000) & (cat[:, 0] < 42400)).any()
        assert (cat[:, 1] > 0.5).any()

    def test_size_parameter(self):
        assert seed_catalog(size=200).shape == (200, 2)
        with pytest.raises(ValueError):
            seed_catalog(size=5)


class TestClipToValid:
    def test_clips_low_perigee(self):
        out = clip_to_valid(np.array([[6400.0, 0.0]]))
        assert out[0, 0] >= MIN_PERIGEE

    def test_clips_high_apogee(self):
        out = clip_to_valid(np.array([[60000.0, 0.2]]))
        assert out[0, 0] * 1.2 <= MAX_APOGEE + 1e-6

    def test_extreme_eccentricity_shrunk(self):
        out = clip_to_valid(np.array([[20000.0, 0.99]]))
        a, e = out[0]
        assert a * (1 - e) >= MIN_PERIGEE - 1e-9
        assert a * (1 + e) <= MAX_APOGEE + 1e-9

    def test_input_not_mutated(self):
        src = np.array([[6400.0, 0.0]])
        clip_to_valid(src)
        assert src[0, 0] == 6400.0


class TestGenerator:
    def test_reproducible(self):
        p1 = generate_population(100, seed=5)
        p2 = generate_population(100, seed=5)
        np.testing.assert_array_equal(p1.a, p2.a)
        np.testing.assert_array_equal(p1.m0, p2.m0)

    def test_different_seeds_differ(self):
        p1 = generate_population(100, seed=5)
        p2 = generate_population(100, seed=6)
        assert not np.array_equal(p1.a, p2.a)

    def test_table2_ranges(self):
        """Table II: inclination in [0, pi]; RAAN, argp, M in [0, 2 pi)."""
        pop = generate_population(3000, seed=9)
        assert np.all((pop.i >= 0) & (pop.i <= math.pi))
        for arr in (pop.raan, pop.argp, pop.m0):
            assert np.all((arr >= 0) & (arr < TWO_PI))
        # Angles roughly uniform: mean near midpoint.
        assert abs(pop.i.mean() - math.pi / 2) < 0.1
        assert abs(pop.raan.mean() - math.pi) < 0.2

    def test_orbits_inside_simulation_volume(self):
        pop = generate_population(3000, seed=10)
        assert np.all(pop.perigee >= MIN_PERIGEE - 1e-6)
        assert np.all(pop.apogee <= MAX_APOGEE + 1e-6)

    def test_ae_distribution_tracks_seed(self):
        pop = generate_population(5000, seed=3)
        # Majority in LEO, as in Fig. 9.
        assert (pop.a < 8000).mean() > 0.6

    def test_custom_kde(self, rng):
        data = np.column_stack([rng.normal(8000, 10, 100), np.abs(rng.normal(0, 1e-4, 100))])
        pop = generate_population(200, seed=1, kde=BivariateKDE(data))
        assert abs(pop.a.mean() - 8000) < 50

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            generate_population(0)
