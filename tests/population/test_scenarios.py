"""Mega-constellation shells and fragmentation clouds."""
from __future__ import annotations

import math

import numpy as np
import pytest

from repro.constants import R_EARTH, TWO_PI
from repro.orbits.elements import KeplerElements
from repro.orbits.propagation import Propagator
from repro.orbits.state import elements_to_state
from repro.population.catalog_seed import MAX_APOGEE, MIN_PERIGEE
from repro.population.scenarios import fragmentation_cloud, megaconstellation


class TestMegaconstellation:
    def test_shell_structure(self):
        shell = megaconstellation(
            n_planes=6, sats_per_plane=10, altitude_km=550.0, inclination_rad=0.93
        )
        assert len(shell) == 60
        np.testing.assert_allclose(shell.a, R_EARTH + 550.0)
        np.testing.assert_allclose(shell.i, 0.93)
        assert len(np.unique(np.round(shell.raan, 9))) == 6

    def test_in_plane_phasing_even(self):
        shell = megaconstellation(4, 8, 550.0, 0.9)
        plane0 = shell.m0[:8]
        spacing = np.diff(np.sort(plane0))
        np.testing.assert_allclose(spacing, TWO_PI / 8, atol=1e-9)

    def test_walker_phasing_offsets_planes(self):
        base = megaconstellation(4, 8, 550.0, 0.9, phasing=0.0)
        walker = megaconstellation(4, 8, 550.0, 0.9, phasing=1.0)
        assert not np.allclose(base.m0, walker.m0)

    def test_validation(self):
        with pytest.raises(ValueError):
            megaconstellation(0, 10, 550.0, 0.9)
        with pytest.raises(ValueError):
            megaconstellation(4, 8, -400.0, 0.9)
        with pytest.raises(ValueError):
            megaconstellation(4, 8, 80000.0, 0.9)

    def test_no_self_conjunctions_in_phased_shell(self):
        """Evenly phased shell objects keep their spacing over time."""
        shell = megaconstellation(3, 12, 550.0, math.radians(53))
        prop = Propagator(shell)
        for t in (0.0, 300.0, 600.0):
            pos = prop.positions(t)
            # Closest pair within one plane stays > 1000 km for 12 slots.
            d = np.linalg.norm(pos[0] - pos[1])
            assert d > 1000.0


class TestFragmentationCloud:
    def _parent(self):
        return KeplerElements(a=7200.0, e=0.01, i=1.4, raan=0.3, argp=0.8, m0=0.0)

    def test_cloud_size_and_validity(self):
        cloud = fragmentation_cloud(self._parent(), 200, seed=4)
        assert len(cloud) == 200
        assert np.all(cloud.perigee >= MIN_PERIGEE - 1e-6)
        assert np.all(cloud.apogee <= MAX_APOGEE + 1e-6)
        assert np.all(cloud.e < 1.0)

    def test_fragments_start_at_breakup_point(self):
        parent = self._parent()
        nu = 0.7
        cloud = fragmentation_cloud(parent, 50, breakup_anomaly=nu, seed=8)
        breakup_pos, _ = elements_to_state(parent, nu)
        pos0 = Propagator(cloud).positions(0.0)
        np.testing.assert_allclose(pos0, np.broadcast_to(breakup_pos, pos0.shape), atol=1e-5)

    def test_cloud_spreads_over_time(self):
        """Kessler dynamics: the cloud disperses along the orbit."""
        cloud = fragmentation_cloud(self._parent(), 100, dv_scale_kms=0.05, seed=5)
        prop = Propagator(cloud)
        spread_0 = np.linalg.norm(prop.positions(0.0).std(axis=0))
        spread_late = np.linalg.norm(prop.positions(20000.0).std(axis=0))
        assert spread_0 < 1.0
        assert spread_late > 100.0

    def test_dv_scale_controls_element_spread(self):
        tight = fragmentation_cloud(self._parent(), 80, dv_scale_kms=0.01, seed=6)
        wide = fragmentation_cloud(self._parent(), 80, dv_scale_kms=0.3, seed=6)
        assert wide.a.std() > tight.a.std()

    def test_deterministic(self):
        c1 = fragmentation_cloud(self._parent(), 30, seed=9)
        c2 = fragmentation_cloud(self._parent(), 30, seed=9)
        np.testing.assert_array_equal(c1.a, c2.a)

    def test_validation(self):
        with pytest.raises(ValueError):
            fragmentation_cloud(self._parent(), 0)
        with pytest.raises(ValueError):
            fragmentation_cloud(self._parent(), 10, dv_scale_kms=0.0)

    def test_impossible_cloud_raises(self):
        # An absurd median delta-v (50 km/s) makes essentially every draw
        # hyperbolic or out-of-volume -> the generator must give up rather
        # than spin forever.
        parent = KeplerElements(a=41000.0, e=0.0, i=0.1, raan=0, argp=0, m0=0)
        with pytest.raises(RuntimeError, match="valid cloud"):
            fragmentation_cloud(parent, 50, dv_scale_kms=50.0, seed=1)
