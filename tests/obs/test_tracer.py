"""Tracer: span nesting, threading, the null default."""
from __future__ import annotations

import threading

from repro.obs import NULL_TRACER, NullTracer, Tracer
from repro.obs.tracer import NULL_SPAN


class TestTracer:
    def test_nesting_assigns_parents(self):
        tr = Tracer()
        with tr.span("window"):
            with tr.span("phase:GRID"):
                with tr.span("round", start_step=0):
                    pass
            with tr.span("phase:REF"):
                pass
        records = {r.name: r for r in tr.records()}
        assert records["window"].parent_id == -1
        assert records["phase:GRID"].parent_id == records["window"].span_id
        assert records["round"].parent_id == records["phase:GRID"].span_id
        assert records["phase:REF"].parent_id == records["window"].span_id

    def test_records_sorted_by_start(self):
        tr = Tracer()
        for name in ("a", "b", "c"):
            with tr.span(name):
                pass
        assert [r.name for r in tr.records()] == ["a", "b", "c"]

    def test_attrs_and_set(self):
        tr = Tracer()
        with tr.span("round", start_step=3) as span:
            span.set(n_steps=16)
        (rec,) = tr.records()
        assert rec.attrs == {"start_step": 3, "n_steps": 16}

    def test_durations_non_negative_and_contained(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        by_name = {r.name: r for r in tr.records()}
        inner, outer = by_name["inner"], by_name["outer"]
        assert inner.duration_s >= 0.0
        assert outer.start_s <= inner.start_s
        assert inner.start_s + inner.duration_s <= outer.start_s + outer.duration_s + 1e-6

    def test_worker_thread_spans_are_roots_with_own_thread_index(self):
        tr = Tracer()

        def work():
            with tr.span("worker"):
                pass

        with tr.span("main"):
            t = threading.Thread(target=work)
            t.start()
            t.join()
        by_name = {r.name: r for r in tr.records()}
        # The worker had no open span on its own stack -> root span.
        assert by_name["worker"].parent_id == -1
        assert by_name["worker"].thread != by_name["main"].thread

    def test_ancestry(self):
        tr = Tracer()
        with tr.span("window"):
            with tr.span("phase:GRID"):
                with tr.span("round"):
                    pass
        (rnd,) = tr.spans("round")
        assert [r.name for r in tr.ancestry(rnd)] == ["phase:GRID", "window"]


class TestNullTracer:
    def test_disabled_and_shared_span(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        span = NULL_TRACER.span("anything", attrs=1)
        assert span is NULL_SPAN

    def test_usable_as_context_manager(self):
        with NULL_TRACER.span("x") as span:
            span.set(a=1)
