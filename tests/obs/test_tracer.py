"""Tracer: span nesting, threading, the null default."""
from __future__ import annotations

import threading

from repro.obs import NULL_TRACER, NullTracer, Tracer
from repro.obs.tracer import NULL_SPAN


class TestTracer:
    def test_nesting_assigns_parents(self):
        tr = Tracer()
        with tr.span("window"):
            with tr.span("phase:GRID"):
                with tr.span("round", start_step=0):
                    pass
            with tr.span("phase:REF"):
                pass
        records = {r.name: r for r in tr.records()}
        assert records["window"].parent_id == -1
        assert records["phase:GRID"].parent_id == records["window"].span_id
        assert records["round"].parent_id == records["phase:GRID"].span_id
        assert records["phase:REF"].parent_id == records["window"].span_id

    def test_records_sorted_by_start(self):
        tr = Tracer()
        for name in ("a", "b", "c"):
            with tr.span(name):
                pass
        assert [r.name for r in tr.records()] == ["a", "b", "c"]

    def test_attrs_and_set(self):
        tr = Tracer()
        with tr.span("round", start_step=3) as span:
            span.set(n_steps=16)
        (rec,) = tr.records()
        assert rec.attrs == {"start_step": 3, "n_steps": 16}

    def test_durations_non_negative_and_contained(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        by_name = {r.name: r for r in tr.records()}
        inner, outer = by_name["inner"], by_name["outer"]
        assert inner.duration_s >= 0.0
        assert outer.start_s <= inner.start_s
        assert inner.start_s + inner.duration_s <= outer.start_s + outer.duration_s + 1e-6

    def test_worker_thread_spans_are_roots_with_own_thread_index(self):
        tr = Tracer()

        def work():
            with tr.span("worker"):
                pass

        with tr.span("main"):
            t = threading.Thread(target=work)
            t.start()
            t.join()
        by_name = {r.name: r for r in tr.records()}
        # The worker had no open span on its own stack -> root span.
        assert by_name["worker"].parent_id == -1
        assert by_name["worker"].thread != by_name["main"].thread

    def test_ancestry(self):
        tr = Tracer()
        with tr.span("window"):
            with tr.span("phase:GRID"):
                with tr.span("round"):
                    pass
        (rnd,) = tr.spans("round")
        assert [r.name for r in tr.ancestry(rnd)] == ["phase:GRID", "window"]

    def test_span_exited_with_exception_is_marked_errored(self):
        tr = Tracer()
        try:
            with tr.span("phase:CD"):
                raise ValueError("overflow")
        except ValueError:
            pass
        (rec,) = tr.records()
        assert rec.attrs["error"] == "ValueError"

    def test_explicit_error_attr_wins(self):
        tr = Tracer()
        try:
            with tr.span("x", error="custom") as span:
                raise ValueError()
        except ValueError:
            pass
        (rec,) = tr.records()
        assert rec.attrs["error"] == "custom"


class TestAdopt:
    """Grafting finished span records from another tracer (the
    cross-process re-parenting behind the ``processes`` executor)."""

    @staticmethod
    def _worker_tracer() -> Tracer:
        tr = Tracer()
        with tr.span("device", device=0):
            with tr.span("phase:INS"):
                pass
        return tr

    def test_roots_attach_under_the_given_parent(self):
        child = self._worker_tracer()
        parent = Tracer()
        with parent.span("window") as window:
            n = parent.adopt(child.records(), parent_id=window.span_id)
        assert n == 2
        by_name = {r.name: r for r in parent.records()}
        assert by_name["device"].parent_id == by_name["window"].span_id
        assert by_name["phase:INS"].parent_id == by_name["device"].span_id

    def test_ids_are_reassigned_uniquely(self):
        child = self._worker_tracer()
        parent = Tracer()
        with parent.span("window") as window:
            parent.adopt(child.records(), parent_id=window.span_id)
            parent.adopt(child.records(), parent_id=window.span_id)
        ids = [r.span_id for r in parent.records()]
        assert len(ids) == len(set(ids)) == 5

    def test_adoptions_get_fresh_thread_indices(self):
        """Two workers both report thread 0; the parent must keep their
        timelines on separate tracks."""
        child_a, child_b = self._worker_tracer(), self._worker_tracer()
        parent = Tracer()
        parent.adopt(child_a.records())
        parent.adopt(child_b.records())
        devices = [r for r in parent.records() if r.name == "device"]
        phase_threads = {
            r.parent_id: r.thread for r in parent.records() if r.name == "phase:INS"
        }
        assert len(devices) == 2
        assert devices[0].thread != devices[1].thread  # two workers, two tracks
        for dev in devices:  # a worker's spans stay on its own track
            assert phase_threads[dev.span_id] == dev.thread

    def test_epoch_shift_translates_start_times(self):
        child = self._worker_tracer()
        parent = Tracer()
        offset = 5.0
        (original, _) = child.records()
        parent.adopt(child.records(), epoch_unix=parent.epoch_unix + offset)
        adopted = parent.records()[0]
        assert adopted.start_s == original.start_s + offset
        assert adopted.duration_s == original.duration_s

    def test_attrs_are_copied_not_shared(self):
        child = self._worker_tracer()
        parent = Tracer()
        records = child.records()
        parent.adopt(records)
        parent.records()[0].attrs["mutated"] = True
        assert "mutated" not in records[0].attrs

    def test_default_parent_is_root(self):
        child = self._worker_tracer()
        parent = Tracer()
        parent.adopt(child.records())
        by_name = {r.name: r for r in parent.records()}
        assert by_name["device"].parent_id == -1


class TestNullTracer:
    def test_disabled_and_shared_span(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        span = NULL_TRACER.span("anything", attrs=1)
        assert span is NULL_SPAN

    def test_usable_as_context_manager(self):
        with NULL_TRACER.span("x") as span:
            span.set(a=1)
