"""Metrics registry: instruments, merging, funnel consistency."""
from __future__ import annotations

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.obs.metrics import Counter, FixedHistogram, Funnel, Gauge


class TestCounter:
    def test_add_and_merge(self):
        a, b = Counter("x"), Counter("x")
        a.add()
        a.add(4)
        b.add(10)
        a.merge(b)
        assert a.value == 15


class TestGauge:
    def test_records_maximum(self):
        g = Gauge("load")
        g.record(0.5)
        g.record(0.2)
        assert g.value == 0.5

    def test_merge_keeps_max_and_ignores_unobserved(self):
        a, b, empty = Gauge("g"), Gauge("g"), Gauge("g")
        a.record(0.3)
        b.record(0.7)
        a.merge(b)
        assert a.value == 0.7
        a.merge(empty)
        assert a.value == 0.7

    def test_unobserved_merge_adopts_value(self):
        a, b = Gauge("g"), Gauge("g")
        b.record(-2.0)
        a.merge(b)
        assert a.value == -2.0 and a.observed


class TestFixedHistogram:
    def test_bucket_placement_le_semantics(self):
        h = FixedHistogram("h", (1.0, 2.0, 4.0))
        h.observe([0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 9.0])
        # buckets: <=1, <=2, <=4, overflow
        assert h.counts.tolist() == [2, 2, 2, 1]
        assert h.n == 7
        assert h.mean == pytest.approx(np.mean([0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 9.0]))

    def test_empty_observe_is_noop(self):
        h = FixedHistogram("h", (1.0,))
        h.observe(np.empty(0))
        assert h.n == 0 and h.counts.tolist() == [0, 0]

    def test_merge_adds_bucketwise(self):
        a = FixedHistogram("h", (1.0, 2.0))
        b = FixedHistogram("h", (1.0, 2.0))
        a.observe([0.5])
        b.observe([1.5, 5.0])
        a.merge(b)
        assert a.counts.tolist() == [1, 1, 1]
        assert a.n == 3

    def test_merge_rejects_different_edges(self):
        a = FixedHistogram("h", (1.0, 2.0))
        b = FixedHistogram("h", (1.0, 3.0))
        with pytest.raises(ValueError, match="edges"):
            a.merge(b)

    def test_edges_must_be_ascending(self):
        with pytest.raises(ValueError):
            FixedHistogram("h", (2.0, 1.0))
        with pytest.raises(ValueError):
            FixedHistogram("h", (1.0, 1.0))


class TestFunnel:
    def test_accumulates_per_stage(self):
        f = Funnel("screen")
        f.record("filter", 100, 40)
        f.record("filter", 50, 10)
        (stage,) = f.stages
        assert (stage.n_in, stage.n_out) == (150, 50)
        assert stage.survival == pytest.approx(50 / 150)

    def test_check_flags_adjacency_violation(self):
        f = Funnel("screen")
        f.record("a", 100, 40)
        f.record("b", 39, 10)
        problems = f.check()
        assert len(problems) == 1 and "emits 40" in problems[0]

    def test_check_passes_consistent_chain(self):
        f = Funnel("screen")
        f.record("a", 100, 40)
        f.record("b", 40, 0)
        f.record("c", 0, 0)
        assert f.check() == []

    def test_merge(self):
        a, b = Funnel("f"), Funnel("f")
        a.record("s", 10, 5)
        b.record("s", 4, 1)
        b.record("t", 1, 1)
        a.merge(b)
        assert [(s.name, s.n_in, s.n_out) for s in a.stages] == [("s", 14, 6), ("t", 1, 1)]


class TestMetricsRegistry:
    def test_get_or_create(self):
        m = MetricsRegistry()
        assert m.counter("c") is m.counter("c")
        assert m.gauge("g") is m.gauge("g")
        assert m.histogram("h", (1.0,)) is m.histogram("h")
        assert m.funnel("f") is m.funnel("f")

    def test_histogram_requires_edges_on_first_use(self):
        m = MetricsRegistry()
        with pytest.raises(ValueError, match="edges"):
            m.histogram("h")
        m.histogram("h", (1.0, 2.0))
        with pytest.raises(ValueError, match="already exists"):
            m.histogram("h", (1.0, 3.0))

    def _worker_registry(self, counter_val, gauge_val, hist_vals):
        m = MetricsRegistry()
        m.counter("c").add(counter_val)
        m.gauge("g").record(gauge_val)
        m.histogram("h", (1.0, 4.0)).observe(hist_vals)
        m.funnel("f").record("s", counter_val, counter_val // 2)
        return m

    def test_merge_is_order_insensitive(self):
        """Bit-identical totals regardless of chunk arrival order — the
        property that makes serial/threads/vectorized metrics comparable."""
        chunks = [(5, 0.25, [0.5]), (7, 0.75, [2.0, 9.0]), (1, 0.5, [1.0])]
        forward = MetricsRegistry()
        for c in chunks:
            forward.merge(self._worker_registry(*c))
        backward = MetricsRegistry()
        for c in reversed(chunks):
            backward.merge(self._worker_registry(*c))
        assert forward.as_dict() == backward.as_dict()
        assert forward.counters["c"].value == 13
        assert forward.gauges["g"].value == 0.75

    def test_as_dict_sorted_and_json_safe(self):
        import json

        m = self._worker_registry(3, 0.5, [1.0])
        m.counter("a").add(1)
        snap = m.as_dict()
        assert list(snap["counters"]) == sorted(snap["counters"])
        json.dumps(snap)  # must be JSON-serialisable as-is
