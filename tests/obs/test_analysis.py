"""Trace analytics: phase stats, critical path, overlap, diff.

The synthetic-span tests pin the arithmetic (hand-checkable interval
layouts); the acceptance test at the bottom runs a real 2-device
``executor="processes"`` screen and cross-checks the trace-derived
per-phase totals against the independently measured PhaseTimer totals.
"""
from __future__ import annotations

import json

import pytest

from repro.detection.types import ScreeningConfig
from repro.obs import MetricsRegistry, Tracer
from repro.obs.analysis import (
    critical_path,
    diff,
    load_records,
    overlap_report,
    phase_stats,
)
from repro.obs.export import write_chrome_trace, write_jsonl
from repro.obs.tracer import SpanRecord


def span(sid, parent, name, start, dur, thread=0, **attrs):
    return SpanRecord(
        span_id=sid, parent_id=parent, name=name,
        start_s=start, duration_s=dur, thread=thread, attrs=attrs,
    )


class TestPhaseStats:
    def test_inclusive_and_exclusive(self):
        records = [
            span(0, -1, "window", 0.0, 10.0),
            span(1, 0, "phase:INS", 0.0, 4.0),
            span(2, 0, "phase:CD", 4.0, 3.0),
        ]
        stats = phase_stats(records)
        assert stats["window"].inclusive_s == pytest.approx(10.0)
        assert stats["window"].exclusive_s == pytest.approx(3.0)  # 10 - (4 + 3)
        assert stats["phase:INS"].exclusive_s == pytest.approx(4.0)  # leaf
        assert stats["phase:CD"].count == 1

    def test_aggregates_same_name_and_mean(self):
        records = [
            span(0, -1, "round", 0.0, 2.0),
            span(1, -1, "round", 3.0, 4.0),
        ]
        (stat,) = phase_stats(records).values()
        assert stat.count == 2
        assert stat.inclusive_s == pytest.approx(6.0)
        assert stat.mean_s == pytest.approx(3.0)

    def test_prefix_filter(self):
        records = [
            span(0, -1, "window", 0.0, 5.0),
            span(1, 0, "phase:CD", 0.0, 2.0),
        ]
        stats = phase_stats(records, prefix="phase:")
        assert list(stats) == ["phase:CD"]

    def test_exclusive_clamped_at_zero(self):
        # A child on another thread can outlive its parent by jitter.
        records = [
            span(0, -1, "parent", 0.0, 1.0),
            span(1, 0, "child", 0.0, 1.5, thread=1),
        ]
        assert phase_stats(records)["parent"].exclusive_s == 0.0


class TestCriticalPath:
    def test_partitions_window_exactly(self):
        # Two overlapping leaves on two tracks, idle tail at the end.
        records = [
            span(0, -1, "A", 0.0, 4.0, thread=0),
            span(1, -1, "B", 3.0, 6.0, thread=1),
        ]
        path = critical_path(records, window_start_s=0.0, window_end_s=10.0)
        assert [e.span.name for e in path.entries] == ["A", "B"]
        a, b = path.entries
        # B owns [3, 9] (its full extent), A is clipped to [0, 3].
        assert (a.start_s, a.end_s) == (0.0, 3.0)
        assert (b.start_s, b.end_s) == (3.0, 9.0)
        assert b.gap_after_s == pytest.approx(1.0)  # idle [9, 10]
        assert path.busy_s == pytest.approx(9.0)
        assert path.gap_s == pytest.approx(1.0)
        assert path.busy_s + path.gap_s == pytest.approx(path.wall_s)

    def test_interior_gap_lands_on_preceding_span(self):
        records = [
            span(0, -1, "A", 0.0, 2.0),
            span(1, -1, "B", 5.0, 2.0),
        ]
        path = critical_path(records, window_start_s=0.0, window_end_s=8.0)
        a, b = path.entries
        assert a.gap_after_s == pytest.approx(3.0)  # idle [2, 5]
        assert b.gap_after_s == pytest.approx(1.0)  # idle [7, 8]
        assert path.gap_s == pytest.approx(4.0)

    def test_only_leaves_walk(self):
        # The parent must never appear: its children carry the time.
        records = [
            span(0, -1, "window", 0.0, 6.0),
            span(1, 0, "work", 1.0, 4.0),
        ]
        path = critical_path(records)
        assert [e.span.name for e in path.entries] == ["work"]
        assert path.busy_s == pytest.approx(4.0)
        assert path.gap_s == pytest.approx(2.0)  # [0,1] head + [5,6] tail

    def test_by_name_sums_descending(self):
        records = [
            span(0, -1, "CD", 0.0, 3.0),
            span(1, -1, "REF", 3.0, 1.0),
            span(2, -1, "CD", 4.0, 3.0),
        ]
        totals = critical_path(records).by_name()
        assert list(totals) == ["CD", "REF"]
        assert totals["CD"] == pytest.approx(6.0)

    def test_empty_source(self):
        path = critical_path([])
        assert path.entries == () and path.wall_s == 0.0


class TestOverlapReport:
    def _two_track_records(self):
        return [
            span(0, -1, "window", 0.0, 6.0, thread=0),
            span(1, 0, "shard", 0.0, 4.0, thread=1),
            span(2, 0, "shard", 2.0, 4.0, thread=2),
        ]

    def test_tracks_overlap_and_concurrency(self):
        rep = overlap_report(self._two_track_records())
        assert rep.wall_s == pytest.approx(6.0)
        by_track = {t.track: t for t in rep.tracks}
        assert by_track[0].busy_s == pytest.approx(6.0)  # the window span
        assert by_track[1].busy_s == pytest.approx(4.0)
        assert by_track[2].utilization == pytest.approx(4.0 / 6.0)
        # Track 0 is always busy; shards overlap it, and each other in [2,4].
        assert rep.overlap_s == pytest.approx(6.0)
        assert rep.concurrency_s[2] == pytest.approx(2.0)  # 3 tracks at once
        assert sum(rep.concurrency_s) <= rep.wall_s + 1e-9
        assert rep.max_concurrency == 3
        assert rep.busy_total_s == pytest.approx(14.0)
        assert rep.parallel_efficiency == pytest.approx(14.0 / 18.0)
        assert rep.effective_parallelism == pytest.approx(14.0 / 6.0)

    def test_window_bounds_clip_spans(self):
        # Without a "window" span the full extent bounds the report; with
        # one, outside time is clipped away.
        records = [
            span(0, -1, "window", 2.0, 4.0, thread=0),
            span(1, -1, "warmup", 0.0, 3.0, thread=1),
        ]
        rep = overlap_report(records)
        assert rep.window_start_s == pytest.approx(2.0)
        assert rep.window_end_s == pytest.approx(6.0)
        by_track = {t.track: t for t in rep.tracks}
        assert by_track[1].busy_s == pytest.approx(1.0)  # clipped to [2,3]

    def test_nested_spans_do_not_double_count(self):
        records = [
            span(0, -1, "outer", 0.0, 4.0, thread=0),
            span(1, 0, "inner", 1.0, 2.0, thread=0),
        ]
        rep = overlap_report(records)
        (track,) = rep.tracks
        assert track.busy_s == pytest.approx(4.0)
        assert rep.overlap_s == 0.0

    def test_as_dict_json_safe(self):
        rep = overlap_report(self._two_track_records())
        as_dict = json.loads(json.dumps(rep.as_dict()))
        assert as_dict["critical_path"]["busy_s"] + as_dict["critical_path"][
            "gap_s"
        ] == pytest.approx(rep.wall_s)

    def test_empty_source(self):
        rep = overlap_report([])
        assert rep.tracks == () and rep.wall_s == 0.0


class TestDiff:
    def test_attributes_regressions_to_exclusive_time(self):
        run_a = [
            span(0, -1, "window", 0.0, 5.0),
            span(1, 0, "phase:CD", 0.0, 3.0),
        ]
        run_b = [
            span(0, -1, "window", 0.0, 8.0),
            span(1, 0, "phase:CD", 0.0, 6.0),
        ]
        result = diff(run_a, run_b)
        # CD got 3 s slower; window's own (exclusive) time is unchanged,
        # so the regression lands on CD alone.
        assert result.deltas[0].name == "phase:CD"
        assert result.deltas[0].delta_s == pytest.approx(3.0)
        assert result.deltas[0].ratio == pytest.approx(2.0)
        window = next(d for d in result.deltas if d.name == "window")
        assert window.delta_s == pytest.approx(0.0)
        assert result.total_delta_s == pytest.approx(3.0)
        assert [d.name for d in result.regressions(min_delta_s=0.1)] == ["phase:CD"]

    def test_handles_disjoint_names(self):
        result = diff([span(0, -1, "old", 0.0, 1.0)], [span(0, -1, "new", 0.0, 2.0)])
        by_name = {d.name: d for d in result.deltas}
        assert by_name["old"].b_count == 0
        assert by_name["new"].a_count == 0
        assert by_name["new"].ratio == float("inf")


class TestLoadRecords:
    def _traced(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        metrics.timeseries("res.rss_bytes").record(0.001, 1000.0)
        with tracer.span("window", method="grid"):
            with tracer.span("phase:CD"):
                pass
        return tracer, metrics

    def test_chrome_trace_round_trip(self, tmp_path):
        tracer, metrics = self._traced()
        path = str(tmp_path / "trace.json")
        write_chrome_trace(tracer, path, metrics)
        records = load_records(path)
        # Counter events skipped; spans round-trip exactly.
        originals = sorted(tracer.records(), key=lambda r: (r.start_s, r.span_id))
        assert [(r.span_id, r.parent_id, r.name) for r in records] == [
            (r.span_id, r.parent_id, r.name) for r in originals
        ]
        for got, want in zip(records, originals):
            assert got.start_s == pytest.approx(want.start_s, abs=1e-9)
            assert got.duration_s == pytest.approx(want.duration_s, abs=1e-9)
        assert records[0].attrs["method"] == "grid"

    def test_jsonl_round_trip(self, tmp_path):
        tracer, metrics = self._traced()
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(tracer, path, metrics)
        records = load_records(path)
        assert [r.name for r in records] == ["window", "phase:CD"]

    def test_passthrough_and_errors(self, tmp_path):
        tracer, _ = self._traced()
        assert load_records(tracer) == tracer.records()
        bad = tmp_path / "bad.txt"
        bad.write_text("not a trace\n")
        with pytest.raises(ValueError, match="not a Chrome trace"):
            load_records(str(bad))


class TestProcessesAcceptance:
    """ISSUE 8 acceptance: on a traced 2-device processes run, the
    overlap report names the worker tracks and the trace-derived phase
    totals agree with the PhaseTimer to 1%."""

    @pytest.fixture(scope="class")
    def traced_run(self, tmp_path_factory):
        from repro.parallel.multidevice import screen_grid_multidevice
        from repro.population.generator import generate_population

        pop = generate_population(400, seed=7)
        cfg = ScreeningConfig(
            threshold_km=5.0, duration_s=600.0, seconds_per_sample=2.0
        )
        tracer = Tracer()
        metrics = MetricsRegistry()
        result, reports = screen_grid_multidevice(
            pop, cfg, 2, executor="processes", tracer=tracer, metrics=metrics
        )
        return tracer, metrics, result, reports

    def test_worker_tracks_and_invariants(self, traced_run):
        tracer, _, _, reports = traced_run
        rep = overlap_report(tracer)
        # Main thread plus one adopted track per device shard.
        assert rep.n_tracks >= 1 + len(reports)
        for track in rep.tracks:
            assert 0.0 <= track.utilization <= 1.0 + 1e-9
            assert track.spans > 0
        assert rep.critical.busy_s + rep.critical.gap_s == pytest.approx(
            rep.wall_s, rel=1e-9, abs=1e-9
        )
        assert sum(rep.concurrency_s) <= rep.wall_s * (1 + 1e-9)
        assert 0.0 <= rep.parallel_efficiency <= 1.0 + 1e-9

    def test_phase_totals_match_phase_timer(self, traced_run):
        tracer, _, result, _ = traced_run
        stats = phase_stats(tracer, prefix="phase:")
        timer_totals = dict(result.timers.totals)
        assert timer_totals, "processes run reported no merged phase timings"
        for name, total in timer_totals.items():
            traced = stats.get(f"phase:{name}")
            assert traced is not None, f"no phase:{name} spans in the trace"
            # Same measurement from two instruments: agree to 1%
            # (plus a microsecond floor for near-zero phases).
            assert traced.inclusive_s == pytest.approx(
                total, rel=0.01, abs=1e-4
            ), f"phase {name}: trace {traced.inclusive_s} vs timer {total}"
