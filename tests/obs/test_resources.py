"""Resource sampler and heartbeat: /proc readers, watermarks, beats."""
from __future__ import annotations

import json
import subprocess
import sys
import time

import pytest

from repro.obs import MetricsRegistry, Tracer
from repro.obs.resources import (
    Heartbeat,
    ResourceSampler,
    child_pids,
    read_cpu_seconds,
    read_rss_bytes,
    read_shm_bytes,
)


class TestProcReaders:
    def test_own_process_readings(self):
        assert read_rss_bytes() > 0
        assert read_cpu_seconds() > 0.0
        assert read_shm_bytes() >= 0

    def test_missing_pid_reads_zero(self):
        # A pid that cannot exist: /proc lookups fail silently.
        assert read_rss_bytes(2**30) == 0
        assert read_cpu_seconds(2**30) == 0.0
        assert child_pids(2**30) == []

    def test_child_discovery(self):
        proc = subprocess.Popen([sys.executable, "-c", "import time; time.sleep(30)"])
        try:
            deadline = time.time() + 5.0
            while proc.pid not in child_pids() and time.time() < deadline:
                time.sleep(0.05)
            assert proc.pid in child_pids()
            assert read_rss_bytes(proc.pid) > 0
        finally:
            proc.kill()
            proc.wait()


class TestResourceSampler:
    def test_sample_once_records_series(self):
        metrics = MetricsRegistry()
        sampler = ResourceSampler(metrics)
        sample = sampler.sample_once()
        assert sample.rss_bytes > 0
        assert metrics.timeseries("res.rss_bytes").n == 1
        assert metrics.timeseries("res.cpu_s").n == 1
        assert metrics.timeseries("res.shm_bytes").n == 1
        assert sampler.sampling_cost_s > 0.0

    def test_thread_lifecycle_and_watermarks(self):
        sampler = ResourceSampler(interval_s=0.02)
        with sampler:
            time.sleep(0.1)
        marks = sampler.watermarks()
        # start() and stop() each take one synchronous sample.
        assert marks["n_samples"] >= 3
        assert marks["peak_rss_bytes"] >= read_rss_bytes() * 0.5
        assert marks["cpu_s"] >= 0.0
        assert marks["sampling_cost_s"] == sampler.sampling_cost_s > 0.0
        # Timestamps are monotone non-decreasing on one clock.
        ts = [s.t_s for s in sampler.samples]
        assert ts == sorted(ts)

    def test_empty_watermarks(self):
        marks = ResourceSampler().watermarks()
        assert marks["n_samples"] == 0 and marks["peak_rss_bytes"] == 0.0

    def test_double_start_rejected(self):
        sampler = ResourceSampler(interval_s=10.0)
        with sampler:
            with pytest.raises(RuntimeError, match="already started"):
                sampler.start()
        sampler.stop()  # idempotent after exit

    def test_children_tracked(self):
        proc = subprocess.Popen([sys.executable, "-c", "import time; time.sleep(30)"])
        try:
            deadline = time.time() + 5.0
            while proc.pid not in child_pids() and time.time() < deadline:
                time.sleep(0.05)
            metrics = MetricsRegistry()
            sampler = ResourceSampler(metrics, include_children=True)
            sampler.sample_once()
            peaks = sampler.peak_child_rss_by_pid()
            assert peaks.get(proc.pid, 0) > 0
            assert sampler.watermarks()["peak_child_rss_bytes"] > 0
            assert metrics.timeseries("res.child_peak.rss_bytes").n == 1
        finally:
            proc.kill()
            proc.wait()

    def test_tracer_clock_alignment(self):
        tracer = Tracer()
        time.sleep(0.01)
        sampler = ResourceSampler(tracer=tracer)
        sample = sampler.sample_once()
        # Stamped on the tracer's span timeline, not the sampler's epoch.
        assert 0.005 < sample.t_s <= tracer.elapsed_s()


class TestHeartbeat:
    def test_beat_contents_rate_and_eta(self):
        metrics = MetricsRegistry()
        lines: "list[str]" = []
        hb = Heartbeat(metrics, interval_s=60.0, counter="cd.rounds",
                       total=100, sink=lines.append)
        metrics.counter("cd.rounds").add(10)
        time.sleep(0.01)
        record = hb.beat()
        assert record["type"] == "heartbeat"
        assert record["progress"] == 10 and record["total"] == 100
        assert record["rate_per_s"] > 0
        assert record["eta_s"] > 0
        assert record["rss_bytes"] > 0
        parsed = json.loads(lines[0])
        assert parsed["counter"] == "cd.rounds"
        # No further progress: rate drops to 0 and the ETA is unknown.
        time.sleep(0.01)
        record = hb.beat()
        assert record["rate_per_s"] == 0.0 and record["eta_s"] is None

    def test_thread_emits_and_final_beat(self):
        metrics = MetricsRegistry()
        lines: "list[str]" = []
        with Heartbeat(metrics, interval_s=0.02, sink=lines.append) as hb:
            metrics.counter("cd.rounds").add(5)
            time.sleep(0.08)
        assert hb.beats >= 2  # periodic beats plus the final one on stop
        last = json.loads(lines[-1])
        assert last["progress"] == 5

    def test_extra_merges_and_never_kills_the_beat(self):
        metrics = MetricsRegistry()
        lines: "list[str]" = []
        hb = Heartbeat(metrics, interval_s=60.0, sink=lines.append,
                       extra=lambda: {"windows": 3})
        assert hb.beat()["windows"] == 3
        boom = Heartbeat(metrics, interval_s=60.0, sink=lines.append,
                         extra=lambda: 1 / 0)
        record = boom.beat()
        assert record["extra_error"] == "ZeroDivisionError"

    def test_stop_without_start_is_noop(self):
        Heartbeat(MetricsRegistry(), interval_s=1.0, sink=lambda line: None).stop()
