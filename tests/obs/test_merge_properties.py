"""Merge commutativity under random permutations (property-style).

The parallel executors merge worker-side state back in whatever order
shards finish, so every mergeable accumulator must produce identical
snapshots for every arrival order.  Hypothesis drives random shard
contents *and* random merge permutations through MetricsRegistry, Funnel
and RefTelemetry; the snapshot must not depend on the permutation.
"""
from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry
from repro.obs.metrics import Funnel
from repro.parallel.backend import RefTelemetry

#: The pipeline's canonical stage order that shard funnels subsample.
STAGE_ORDER = ["alloc", "grid", "ins", "cd", "cop", "ref"]


def _normalized(obj):
    """Round floats to 12 significant digits, recursively.

    Counter/gauge/funnel state merges exactly; a histogram's ``total``
    (and the ``mean`` derived from it) accumulates float sums in merge
    order, and float addition is only associative up to roundoff — one
    ulp of drift across permutations is not a commutativity bug.
    """
    if isinstance(obj, float):
        return float(f"{obj:.12g}")
    if isinstance(obj, dict):
        return {k: _normalized(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_normalized(v) for v in obj]
    return obj


def _shard_registry(rng: random.Random) -> MetricsRegistry:
    m = MetricsRegistry()
    for name in ("cd.rounds", "cd.pairs_emitted"):
        if rng.random() < 0.8:
            m.counter(name).add(rng.randrange(0, 100))
    if rng.random() < 0.8:
        m.gauge("hashmap.load_factor").record(rng.uniform(0.0, 1.0))
    if rng.random() < 0.8:
        m.histogram("probe_length", (1.0, 2.0, 4.0)).observe(
            [rng.uniform(0.0, 8.0) for _ in range(rng.randrange(0, 6))]
        )
    if rng.random() < 0.8:
        series = m.timeseries("res.rss_bytes")
        for _ in range(rng.randrange(0, 4)):
            series.record(rng.uniform(0.0, 10.0), rng.uniform(0.0, 1e9))
    # Each shard records a random *subsequence* of the pipeline stages —
    # the shape that used to make merged stage order arrival-dependent.
    funnel = m.funnel("screen")
    for stage in STAGE_ORDER:
        if rng.random() < 0.6:
            funnel.record(stage, rng.randrange(0, 50), rng.randrange(0, 50))
    return m


def _shard_telemetry(rng: random.Random) -> RefTelemetry:
    t = RefTelemetry()
    t.record_lanes(rng.randrange(0, 100))
    for _ in range(rng.randrange(0, 5)):
        t.record_golden_iteration(rng.randrange(0, 10))
    t.record_kepler(rng.randrange(0, 50), rng.randrange(0, 200))
    if rng.random() < 0.5:
        t.record_brent(rng.randrange(0, 30))
    return t


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_shards=st.integers(min_value=1, max_value=6),
)
def test_metrics_registry_merge_commutes(seed, n_shards):
    rng = random.Random(seed)
    shard_seeds = [rng.randrange(2**31) for _ in range(n_shards)]
    order = list(range(n_shards))
    rng.shuffle(order)

    forward = MetricsRegistry()
    for s in shard_seeds:
        forward.merge(_shard_registry(random.Random(s)))
    shuffled = MetricsRegistry()
    for idx in order:
        shuffled.merge(_shard_registry(random.Random(shard_seeds[idx])))

    assert _normalized(forward.as_dict()) == _normalized(shuffled.as_dict())


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_shards=st.integers(min_value=2, max_value=6),
)
def test_funnel_merge_stage_order_permutation_invariant(seed, n_shards):
    rng = random.Random(seed)
    shards = []
    shard_sequences = []
    for _ in range(n_shards):
        funnel = Funnel("screen")
        sequence = [s for s in STAGE_ORDER if rng.random() < 0.5]
        for stage in sequence:
            funnel.record(stage, rng.randrange(0, 50), rng.randrange(0, 50))
        shards.append(funnel)
        shard_sequences.append(sequence)
    order = list(range(n_shards))
    rng.shuffle(order)

    def merged(indices):
        out = Funnel("screen")
        for i in indices:
            out.merge(shards[i])
        return out.as_dict()

    base = merged(range(n_shards))
    assert merged(order) == base
    # Every stage pair some shard co-observed keeps its pipeline order
    # in the merged funnel (pairs no shard related carry no constraint).
    position = {s["name"]: k for k, s in enumerate(base["stages"])}
    for sequence in shard_sequences:
        for i, earlier in enumerate(sequence):
            for later in sequence[i + 1:]:
                assert position[earlier] < position[later], (
                    f"{earlier} must precede {later}"
                )


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_shards=st.integers(min_value=1, max_value=6),
)
def test_ref_telemetry_merge_commutes(seed, n_shards):
    rng = random.Random(seed)
    shard_seeds = [rng.randrange(2**31) for _ in range(n_shards)]
    order = list(range(n_shards))
    rng.shuffle(order)

    forward = RefTelemetry()
    for s in shard_seeds:
        forward.merge(_shard_telemetry(random.Random(s)))
    shuffled = RefTelemetry()
    for idx in order:
        shuffled.merge(_shard_telemetry(random.Random(shard_seeds[idx])))

    assert forward.as_dict() == shuffled.as_dict()
    # Per-iteration retirement aggregates by index, not by concatenation.
    assert len(forward.lanes_retired_per_iteration) == max(
        (len(_shard_telemetry(random.Random(s)).lanes_retired_per_iteration)
         for s in shard_seeds),
        default=0,
    )
