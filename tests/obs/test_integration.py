"""End-to-end observability: spans, funnels and structure metrics on
real screening runs, validated with the same helpers the CI smoke job
uses (``tests/obs/schema.py``)."""
from __future__ import annotations

import math

import numpy as np
import pytest

from repro.constants import EMPTY_KEY
from repro.detection.api import screen
from repro.detection.types import ScreeningConfig
from repro.obs import MetricsRegistry, Tracer, to_chrome_trace
from repro.obs.collect import observe_grid
from repro.orbits.elements import KeplerElements, OrbitalElementsArray
from repro.population.generator import generate_population
from repro.spatial.hashing import murmur3_fmix64_array
from repro.spatial.vectorgrid import VectorHashGrid
from tests.obs.schema import validate_chrome_trace, validate_funnel, validate_nesting


@pytest.fixture(scope="module")
def crossing_population() -> OrbitalElementsArray:
    el1 = KeplerElements(a=7000.0, e=0.001, i=math.radians(50), raan=0.0, argp=0.0, m0=0.0)
    el2 = KeplerElements(a=7001.0, e=0.001, i=math.radians(55), raan=0.0, argp=0.0, m0=1e-4)
    return OrbitalElementsArray.from_elements([el1, el2])


CFG = ScreeningConfig(threshold_km=5.0, duration_s=900.0, seconds_per_sample=2.0,
                      hybrid_seconds_per_sample=10.0)


class TestSpanTree:
    @pytest.mark.parametrize("method", ["grid", "hybrid", "legacy", "kdtree"])
    def test_window_phase_round_nesting(self, crossing_population, method):
        tracer = Tracer()
        metrics = MetricsRegistry()
        backend = "serial" if method == "legacy" else "vectorized"
        screen(crossing_population, CFG, method=method, backend=backend,
               tracer=tracer, metrics=metrics)
        trace = to_chrome_trace(tracer, metrics)
        assert validate_chrome_trace(trace) == []
        assert validate_nesting(trace) == []
        assert tracer.spans("window")
        if method == "kdtree":
            # The comparator has no fused-round loop; its per-step work
            # still lands under the window as phase spans.
            assert tracer.spans("phase:CD") and tracer.spans("phase:REF")
        else:
            assert tracer.spans("round")

    def test_window_attrs(self, crossing_population):
        tracer = Tracer()
        screen(crossing_population, CFG, method="grid", tracer=tracer)
        (window,) = tracer.spans("window")
        assert window.attrs == {"method": "grid", "backend": "vectorized", "objects": 2}

    def test_null_tracer_collects_nothing(self, crossing_population):
        result = screen(crossing_population, CFG, method="grid")
        assert result.metrics is None


class TestFunnel:
    @pytest.mark.parametrize("method", ["grid", "hybrid", "legacy", "kdtree"])
    def test_self_consistent_and_ends_at_conjunctions(self, crossing_population, method):
        metrics = MetricsRegistry()
        backend = "serial" if method == "legacy" else "vectorized"
        result = screen(crossing_population, CFG, method=method, backend=backend,
                        metrics=metrics)
        assert result.n_conjunctions > 0  # the engineered crossing pair
        funnel = metrics.funnels["screen"]
        assert funnel.check() == []
        assert funnel.stages[-1].n_out == result.n_conjunctions
        snapshot = metrics.as_dict()["funnels"]["screen"]
        assert validate_funnel(snapshot, result.n_conjunctions) == []

    @pytest.mark.parametrize("backend", ["serial", "vectorized"])
    def test_consistent_through_overflow_regrow(self, monkeypatch, backend):
        """Regression: a round that overflowed and replayed used to skip its
        ``cd.pairs_emitted`` increment entirely, so the funnel's emit stage
        undercounted against the conjunction-map contents.  Forced regrows
        must leave the funnel self-consistent and the emission volume
        identical to an unsqueezed run."""
        import repro.detection.gridbased as gb
        from repro.spatial.conjmap import ConjunctionMap

        base = generate_population(12, seed=4)
        pop = OrbitalElementsArray.concatenate([base, base])
        cfg = ScreeningConfig(threshold_km=5.0, duration_s=60.0, seconds_per_sample=2.0)
        clean = MetricsRegistry()
        screen(pop, cfg, method="grid", backend=backend, metrics=clean)

        monkeypatch.setattr(
            gb, "_make_conjmap", lambda n, config, variant, sps: ConjunctionMap(2)
        )
        squeezed = MetricsRegistry()
        result = screen(pop, cfg, method="grid", backend=backend, metrics=squeezed)
        assert squeezed.counter("conjmap.regrows").value > 0  # really overflowed
        assert (
            squeezed.counter("cd.pairs_emitted").value
            == clean.counter("cd.pairs_emitted").value
            > 0
        )
        funnel = squeezed.funnels["screen"]
        assert funnel.check() == []
        snapshot = squeezed.as_dict()["funnels"]["screen"]
        assert validate_funnel(snapshot, result.n_conjunctions) == []

    def test_full_rejection_keeps_chain_consistent(self):
        # Two orbits whose altitude bands never come near each other: the
        # apogee/perigee filter rejects 100% and every later stage sees 0.
        el1 = KeplerElements(a=7000.0, e=0.0, i=1.0, raan=0.0, argp=0.0, m0=0.0)
        el2 = KeplerElements(a=9000.0, e=0.0, i=1.0, raan=0.0, argp=0.0, m0=0.0)
        pop = OrbitalElementsArray.from_elements([el1, el2])
        metrics = MetricsRegistry()
        result = screen(pop, CFG, method="legacy", metrics=metrics)
        funnel = metrics.funnels["screen"]
        assert result.n_conjunctions == 0
        assert funnel.check() == []
        by_name = {s.name: s for s in funnel.stages}
        assert by_name["filter:apogee_perigee"].n_out == 0


class TestStructureMetrics:
    def test_hashmap_metrics_agree_with_arrays(self, rng):
        """Recorded hash-map health must equal values recomputed directly
        from the finished table's key array."""
        positions = rng.uniform(-500.0, 500.0, size=(64, 3))
        ids = np.arange(64, dtype=np.int64)
        grid = VectorHashGrid(10.0, capacity=64)
        grid.build(ids, positions)
        metrics = MetricsRegistry()
        observe_grid(metrics, grid)

        keys = grid.table_keys
        occupied = np.nonzero(keys != np.uint64(EMPTY_KEY))[0]
        assert metrics.counters["hashmap.occupied"].value == len(occupied)
        assert metrics.counters["hashmap.slots"].value == grid.n_slots
        assert metrics.gauges["hashmap.load_factor"].value == pytest.approx(
            len(occupied) / grid.n_slots
        )
        # Brute-force probe lengths: circular displacement from home + 1.
        home = (murmur3_fmix64_array(keys[occupied]) % np.uint64(grid.n_slots)).astype(np.int64)
        lengths = (occupied - home) % grid.n_slots + 1
        hist = metrics.histograms["hashmap.probe_length"]
        assert hist.n == len(occupied)
        assert hist.total == pytest.approx(float(lengths.sum()))
        expected = np.zeros(len(hist.edges) + 1, dtype=np.int64)
        idx = np.searchsorted(np.asarray(hist.edges), lengths, side="left")
        np.add.at(expected, idx, 1)
        assert hist.counts.tolist() == expected.tolist()
        # Every satellite landed in some cell.
        assert metrics.counters["grid.lanes"].value == 64

    def test_serial_screen_reports_cas_probe_counters(self, crossing_population):
        metrics = MetricsRegistry()
        screen(crossing_population, CFG, method="grid", backend="serial",
               metrics=metrics)
        counters = {k: c.value for k, c in metrics.counters.items()}
        # UniformGrid's FixedSizeHashMap surfaces its live CAS counters.
        assert counters["hashmap.inserts"] > 0
        assert counters["hashmap.insert_probes"] >= counters["hashmap.inserts"]

    def test_screen_with_hashmap_grid_reports_cas_rounds(self):
        pop = generate_population(300, seed=13)
        cfg = ScreeningConfig(threshold_km=10.0, duration_s=600.0,
                              seconds_per_sample=2.0, grid_impl="hashmap")
        metrics = MetricsRegistry()
        screen(pop, cfg, method="grid", metrics=metrics)
        counters = {k: c.value for k, c in metrics.counters.items()}
        assert counters["hashmap.tables"] == counters["grid.builds"] > 0
        assert counters["hashmap.cas_insert_rounds"] >= counters["hashmap.tables"]
        assert 0.0 < metrics.gauges["hashmap.load_factor"].value <= 1.0
        # Aggregated occupancy equals total inserted lanes across builds.
        hist = metrics.histograms["grid.cell_occupancy"]
        assert hist.total == counters["grid.lanes"]


class TestCampaignTracing:
    def test_campaign_windows_wrap_screens(self, crossing_population):
        from repro.ops.campaign import ScreeningCampaign

        tracer = Tracer()
        metrics = MetricsRegistry()
        campaign = ScreeningCampaign(
            crossing_population, CFG, method="grid",
            tracer=tracer, metrics=metrics,
        )
        campaign.run(2)
        campaign_spans = tracer.spans("campaign.window")
        assert [s.attrs["window"] for s in campaign_spans] == [0, 1]
        windows = tracer.spans("window")
        assert len(windows) == 2
        for w in windows:
            assert [a.name for a in tracer.ancestry(w)][:1] == ["campaign.window"]
        # One shared registry accumulates across windows.
        assert metrics.counters["cd.rounds"].value > 0
        assert metrics.funnels["screen"].check() == []


class TestCrossBackendDeterminism:
    def test_pipeline_counters_identical_across_backends(self):
        """The funnel and pipeline-level counters are bit-identical no
        matter which backend produced them (structure metrics are
        layout-specific and excluded; see repro.obs.collect)."""
        pop = generate_population(400, seed=11)
        snapshots = {}
        for backend in ("vectorized", "serial", "threads"):
            metrics = MetricsRegistry()
            screen(pop, CFG, method="grid", backend=backend, metrics=metrics)
            snap = metrics.as_dict()
            snapshots[backend] = {
                "cd.pairs_emitted": snap["counters"]["cd.pairs_emitted"],
                "conjmap.records": snap["counters"]["conjmap.records"],
                "grid.lanes": snap["counters"]["grid.lanes"],
                "funnel": snap["funnels"]["screen"],
            }
        assert snapshots["serial"] == snapshots["vectorized"]
        assert snapshots["threads"] == snapshots["vectorized"]
