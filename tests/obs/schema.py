"""Dependency-free validators for the ``repro.obs`` export schemas.

Shared by the unit tests and the CI ``obs-smoke`` job (which runs them
against a real traced CLI screen).  Each validator returns a list of
human-readable problems; an empty list means the document conforms.

Run as a script to validate a trace file::

    python -m tests.obs.schema TRACE.json

exits non-zero listing the problems if the trace (or its embedded funnel)
is malformed.
"""
from __future__ import annotations

import json
import numbers

#: Required keys of one Chrome complete ("ph": "X") span event.
_EVENT_KEYS = {
    "name": str,
    "ph": str,
    "ts": numbers.Real,
    "dur": numbers.Real,
    "pid": numbers.Integral,
    "tid": numbers.Integral,
    "cat": str,
    "args": dict,
}

#: Required keys of one Chrome counter ("ph": "C") event — no duration,
#: no span ids; the sampled value lives in args.value.
_COUNTER_KEYS = {
    "name": str,
    "ph": str,
    "ts": numbers.Real,
    "pid": numbers.Integral,
    "tid": numbers.Integral,
    "cat": str,
    "args": dict,
}


def validate_chrome_trace(trace: "dict") -> "list[str]":
    """Structural validation of a Chrome trace document.

    Accepts complete ("X") span events and counter ("C") events — the
    watermark tracks exported from sampled :class:`Series`.
    """
    problems: "list[str]" = []
    if not isinstance(trace, dict):
        return [f"trace must be a JSON object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["trace must contain a 'traceEvents' list"]
    other = trace.get("otherData")
    if not isinstance(other, dict) or not isinstance(other.get("schema_version"), int):
        problems.append("otherData.schema_version (int) is required")
    seen_ids: "set[int]" = set()
    for k, ev in enumerate(events):
        where = f"traceEvents[{k}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph == "C":
            for key, typ in _COUNTER_KEYS.items():
                if key not in ev:
                    problems.append(f"{where}: missing key {key!r}")
                elif not isinstance(ev[key], typ):
                    problems.append(f"{where}: {key!r} has type {type(ev[key]).__name__}")
            args = ev.get("args")
            if isinstance(args, dict) and not isinstance(args.get("value"), numbers.Real):
                problems.append(f"{where}: counter event needs numeric args.value")
            continue
        for key, typ in _EVENT_KEYS.items():
            if key not in ev:
                problems.append(f"{where}: missing key {key!r}")
            elif not isinstance(ev[key], typ):
                problems.append(f"{where}: {key!r} has type {type(ev[key]).__name__}")
        if ph != "X":
            problems.append(f"{where}: ph must be 'X' or 'C', got {ph!r}")
        if isinstance(ev.get("dur"), numbers.Real) and ev["dur"] < 0:
            problems.append(f"{where}: negative duration {ev['dur']}")
        args = ev.get("args")
        if isinstance(args, dict):
            sid, pid = args.get("span_id"), args.get("parent_id")
            if not isinstance(sid, int) or not isinstance(pid, int):
                problems.append(f"{where}: args.span_id/parent_id must be ints")
            elif sid in seen_ids:
                problems.append(f"{where}: duplicate span_id {sid}")
            else:
                seen_ids.add(sid)
    # Parent references must resolve (or be -1 for roots).
    for k, ev in enumerate(events):
        if not isinstance(ev, dict) or ev.get("ph") == "C":
            continue
        args = ev.get("args", {}) if isinstance(ev, dict) else {}
        pid = args.get("parent_id")
        if isinstance(pid, int) and pid != -1 and pid not in seen_ids:
            problems.append(f"traceEvents[{k}]: parent_id {pid} refers to no span")
    return problems


def validate_nesting(trace: "dict") -> "list[str]":
    """Hierarchy validation: window → phase:* → round.

    Every ``round`` span must have a ``phase:*`` ancestor and a ``window``
    ancestor; every ``phase:*`` span must sit under a ``window``.
    """
    problems: "list[str]" = []
    events = trace.get("traceEvents", [])
    by_id = {
        ev["args"]["span_id"]: ev
        for ev in events
        if isinstance(ev, dict) and isinstance(ev.get("args"), dict)
        and isinstance(ev["args"].get("span_id"), int)
    }

    def ancestor_names(ev: "dict") -> "list[str]":
        names = []
        pid = ev["args"].get("parent_id", -1)
        while pid != -1 and pid in by_id:
            parent = by_id[pid]
            names.append(parent["name"])
            pid = parent["args"].get("parent_id", -1)
        return names

    windows = [ev for ev in by_id.values() if ev["name"] == "window"]
    if not windows:
        problems.append("no 'window' span in trace")
    for ev in by_id.values():
        if ev["name"] == "round":
            anc = ancestor_names(ev)
            if not any(name.startswith("phase:") for name in anc):
                problems.append(f"round span {ev['args']['span_id']} has no phase:* ancestor")
            if "window" not in anc:
                problems.append(f"round span {ev['args']['span_id']} has no window ancestor")
        elif ev["name"].startswith("phase:"):
            if "window" not in ancestor_names(ev):
                problems.append(f"{ev['name']} span {ev['args']['span_id']} has no window ancestor")
    return problems


def validate_funnel(funnel: "dict", n_conjunctions: "int | None" = None) -> "list[str]":
    """Self-consistency of one exported funnel snapshot.

    Adjacent stages must hand off exactly (stage N's out == stage N+1's
    in); when ``n_conjunctions`` is given, the final stage's out must
    equal it.
    """
    problems: "list[str]" = []
    stages = funnel.get("stages")
    if not isinstance(stages, list) or not stages:
        return ["funnel must contain a non-empty 'stages' list"]
    for s in stages:
        for key in ("name", "in", "out"):
            if key not in s:
                problems.append(f"funnel stage missing key {key!r}: {s}")
    for a, b in zip(stages, stages[1:]):
        if a.get("out") != b.get("in"):
            problems.append(
                f"stage {a.get('name')!r} emits {a.get('out')} but "
                f"stage {b.get('name')!r} receives {b.get('in')}"
            )
    if n_conjunctions is not None and stages[-1].get("out") != n_conjunctions:
        problems.append(
            f"final stage {stages[-1].get('name')!r} out {stages[-1].get('out')} "
            f"!= {n_conjunctions} conjunctions"
        )
    return problems


def validate_trace_file(path: str) -> "list[str]":
    """Validate a Chrome trace file: structure, nesting, embedded funnels."""
    with open(path, "r", encoding="utf-8") as fh:
        trace = json.load(fh)
    problems = validate_chrome_trace(trace)
    problems += validate_nesting(trace)
    metrics = trace.get("otherData", {}).get("metrics")
    if isinstance(metrics, dict):
        for name, funnel in metrics.get("funnels", {}).items():
            problems += [f"funnel {name!r}: {p}" for p in validate_funnel(funnel)]
    return problems


if __name__ == "__main__":  # pragma: no cover - exercised by the CI job
    import sys

    failures = 0
    for arg in sys.argv[1:]:
        found = validate_trace_file(arg)
        for problem in found:
            print(f"{arg}: {problem}")
        failures += len(found)
        if not found:
            print(f"{arg}: OK")
    sys.exit(1 if failures else 0)
