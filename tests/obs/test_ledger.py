"""BENCH ledger: flattening, schema validation, regression detection."""
from __future__ import annotations

import json

import pytest

from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    BenchLedger,
    flatten_metrics,
    git_sha,
    host_fingerprint,
    metric_direction,
    validate_ledger,
)

HOST_A = {"machine": "x86_64", "system": "Linux", "cpus": 4, "python": "3.11"}
HOST_B = {"machine": "aarch64", "system": "Linux", "cpus": 8, "python": "3.11"}


class TestMetricDirection:
    @pytest.mark.parametrize(
        "name",
        ["speedup", "sweep[0].speedup", "coherence_hit_rate",
         "parallel_efficiency", "filter.survival"],
    )
    def test_higher_better(self, name):
        assert metric_direction(name) == 1

    @pytest.mark.parametrize(
        "name",
        ["wall_s", "paper_scale.wall_s", "overhead_fraction",
         "peak_rss_bytes", "tiers[1].single_s"],
    )
    def test_lower_better(self, name):
        assert metric_direction(name) == -1

    @pytest.mark.parametrize("name", ["objects", "round_size", "host_cpus"])
    def test_ungated(self, name):
        assert metric_direction(name) == 0


class TestFlattenMetrics:
    def test_nested_paths_and_exclusions(self):
        payload = {
            "wall_s": 1.5,
            "check_only": True,          # bool: excluded
            "label": "smoke",            # string: excluded
            "missing": None,             # null: excluded
            "nan": float("nan"),         # non-finite: excluded
            "sweep": [{"speedup": 2.0}, {"speedup": 1.5}],
            "nested": {"deep": {"n": 3}},
        }
        assert flatten_metrics(payload) == {
            "wall_s": 1.5,
            "sweep[0].speedup": 2.0,
            "sweep[1].speedup": 1.5,
            "nested.deep.n": 3.0,
        }


class TestValidation:
    def _entry(self, **overrides):
        entry = {
            "artifact": "BENCH_cd",
            "sha": "abc123",
            "timestamp_unix": 1754650000.0,
            "host": dict(HOST_A),
            "check_only": True,
            "metrics": {"speedup": 1.4},
        }
        entry.update(overrides)
        return entry

    def test_valid_document(self):
        doc = {"schema_version": LEDGER_SCHEMA_VERSION, "entries": [self._entry()]}
        assert validate_ledger(doc) == []

    def test_flags_bad_version_missing_keys_and_types(self):
        doc = {
            "schema_version": 99,
            "entries": [
                self._entry(sha=123),
                {k: v for k, v in self._entry().items() if k != "host"},
                self._entry(metrics={"speedup": "fast"}),
            ],
        }
        errors = validate_ledger(doc)
        assert any("schema_version" in e for e in errors)
        assert any("entries[0].sha" in e for e in errors)
        assert any("missing key 'host'" in e for e in errors)
        assert any("values must be numbers" in e for e in errors)

    def test_constructor_and_save_refuse_invalid(self, tmp_path):
        with pytest.raises(ValueError, match="invalid ledger"):
            BenchLedger({"schema_version": 0, "entries": []})
        ledger = BenchLedger()
        ledger.doc["entries"].append({"broken": True})
        with pytest.raises(ValueError, match="refusing to save"):
            ledger.save(str(tmp_path / "ledger.json"))


class TestIngestion:
    def test_append_and_round_trip(self, tmp_path):
        ledger = BenchLedger()
        entry = ledger.append_artifact(
            "BENCH_cd",
            {"check_only": True, "sweep": [{"speedup": 1.4}]},
            sha="feed1234",
            timestamp_unix=1.0,
            host=dict(HOST_A),
        )
        assert entry["check_only"] is True
        assert entry["metrics"] == {"sweep[0].speedup": 1.4}
        path = str(tmp_path / "BENCH_ledger.json")
        ledger.save(path)
        again = BenchLedger.load(path)
        assert again.entries == ledger.entries

    def test_ingest_results_dir_skips_ledger_itself(self, tmp_path):
        (tmp_path / "BENCH_cd.json").write_text(
            json.dumps({"check_only": False, "speedup": 2.0})
        )
        (tmp_path / "BENCH_ledger.json").write_text(json.dumps({"schema_version": 1}))
        (tmp_path / "report.txt").write_text("not json\n")
        ledger = BenchLedger()
        added = ledger.ingest_results_dir(str(tmp_path), sha="cafe")
        assert [e["artifact"] for e in added] == ["BENCH_cd"]
        assert added[0]["sha"] == "cafe"

    def test_load_or_create(self, tmp_path):
        assert BenchLedger.load_or_create(str(tmp_path / "missing.json")).entries == []


class TestRegressions:
    def _ledger_with(self, *metric_dicts, host=None, check_only=True):
        ledger = BenchLedger()
        for i, metrics in enumerate(metric_dicts):
            ledger.append_artifact(
                "BENCH_x",
                {"check_only": check_only, **metrics},
                sha=f"sha{i}",
                timestamp_unix=float(i),
                host=dict(host or HOST_A),
            )
        return ledger

    def test_higher_better_regression_vs_rolling_best(self):
        ledger = self._ledger_with(
            {"speedup": 2.0}, {"speedup": 1.8}, {"speedup": 0.5}
        )
        (reg,) = ledger.check_regressions(rtol=0.5)
        assert reg.metric == "speedup" and reg.direction == 1
        assert reg.best == 2.0 and reg.best_sha == "sha0"
        assert "dropped below" in repr(reg)
        # Within tolerance: 1.8 >= 2.0 * 0.5.
        assert self._ledger_with(
            {"speedup": 2.0}, {"speedup": 1.8}
        ).check_regressions(rtol=0.5) == []

    def test_lower_better_needs_same_host(self):
        ledger = BenchLedger()
        ledger.append_artifact("BENCH_x", {"check_only": True, "wall_s": 1.0},
                               sha="a", timestamp_unix=0.0, host=dict(HOST_A))
        ledger.append_artifact("BENCH_x", {"check_only": True, "wall_s": 10.0},
                               sha="b", timestamp_unix=1.0, host=dict(HOST_B))
        # Cross-host seconds never compare.
        assert ledger.check_regressions(rtol=0.5) == []
        ledger.append_artifact("BENCH_x", {"check_only": True, "wall_s": 25.0},
                               sha="c", timestamp_unix=2.0, host=dict(HOST_B))
        (reg,) = ledger.check_regressions(rtol=0.5)
        assert reg.best == 10.0 and "rose above" in repr(reg)

    def test_check_only_cohorts_do_not_mix(self):
        ledger = BenchLedger()
        ledger.append_artifact("BENCH_x", {"check_only": False, "speedup": 4.0},
                               sha="a", timestamp_unix=0.0, host=dict(HOST_A))
        ledger.append_artifact("BENCH_x", {"check_only": True, "speedup": 1.1},
                               sha="b", timestamp_unix=1.0, host=dict(HOST_A))
        assert ledger.check_regressions(rtol=0.5) == []

    def test_zero_best_skips_relative_gate(self):
        ledger = self._ledger_with({"wall_s": 0.0}, {"wall_s": 5.0})
        assert ledger.check_regressions(rtol=0.5) == []

    def test_trajectory(self):
        ledger = self._ledger_with({"speedup": 1.0}, {"speedup": 2.0})
        assert ledger.trajectory("BENCH_x", "speedup") == [
            ("sha0", 1.0), ("sha1", 2.0),
        ]


class TestEnvironmentStamps:
    def test_host_fingerprint_shape(self):
        fp = host_fingerprint()
        assert set(fp) == {"machine", "system", "cpus", "python"}
        assert fp["cpus"] >= 1

    def test_git_sha_in_repo_and_fallback(self, tmp_path):
        assert len(git_sha()) == 40  # this test runs inside the repo
        assert git_sha(str(tmp_path)) == "unknown"
