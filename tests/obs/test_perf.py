"""Perf-assertion API: ledger sampling, fluent gates, tolerances."""
from __future__ import annotations

import pytest

from repro.obs.perf import (
    GateResult,
    PerfLedger,
    PerfRegression,
    expect,
    expect_value,
)


class TestPerfLedger:
    def test_min_of_k(self):
        ledger = PerfLedger()
        for s in (0.5, 0.3, 0.4):
            ledger.add("CD", "serial", s)
        assert ledger.best_s("CD", "serial") == 0.3
        assert ledger.samples("CD", "serial") == [0.5, 0.3, 0.4]

    def test_unknown_key_lists_known(self):
        ledger = PerfLedger()
        ledger.add("CD", "serial", 1.0)
        with pytest.raises(KeyError, match="CD/serial"):
            ledger.best_s("CD", "warm")

    def test_subjects_and_as_dict(self):
        ledger = PerfLedger()
        ledger.add("CD", "b", 1.0)
        ledger.add("CD", "a", 2.0)
        ledger.add("REF", "a", 3.0)
        assert ledger.subjects("CD") == ["a", "b"]
        snap = ledger.as_dict()
        assert snap["CD/a"] == {"samples_s": [2.0], "best_s": 2.0, "k": 1}


class TestGates:
    def _ledger(self):
        ledger = PerfLedger()
        for serial, coherent in ((1.0, 0.52), (0.9, 0.5), (1.1, 0.6)):
            ledger.add("CD", "serial", serial)
            ledger.add("CD", "coherent", coherent)
        return ledger

    def test_speedup_vs_passes_and_carries_evidence(self):
        gate = expect(self._ledger()).phase("CD").speedup_vs("serial") >= 1.3
        assert isinstance(gate, GateResult) and gate
        assert gate.value == pytest.approx(0.9 / 0.5)
        assert "PASS" in repr(gate) and "serial best=0.9" in repr(gate)

    def test_speedup_subject_resolution_requires_unique_other(self):
        ledger = self._ledger()
        ledger.add("CD", "third", 1.0)
        with pytest.raises(ValueError, match="pass subject="):
            expect(ledger).phase("CD").speedup_vs("serial")
        gate = expect(ledger).phase("CD").speedup_vs("serial", "coherent") >= 1.0
        assert gate

    def test_failing_gate_is_falsy_and_check_raises(self):
        gate = expect(self._ledger()).phase("CD").speedup_vs("serial") >= 10.0
        assert not gate
        assert "FAIL" in repr(gate)
        with pytest.raises(PerfRegression, match="FAIL"):
            gate.check()
        passing = expect(self._ledger()).phase("CD").speedup_vs("serial") >= 1.0
        assert passing.check() is passing

    def test_ratio_vs_gates_overheads(self):
        ledger = PerfLedger()
        ledger.add("screen", "baseline", 1.0)
        ledger.add("screen", "instrumented", 1.015)
        gate = (
            expect(ledger).phase("screen").ratio_vs("baseline", "instrumented")
            <= 1.02
        )
        assert gate and gate.value == pytest.approx(1.015)
        assert not (
            expect(ledger).phase("screen").ratio_vs("baseline", "instrumented")
            <= 1.01
        )

    def test_best_gates_absolute_time(self):
        ledger = PerfLedger()
        ledger.add("window", "warm", 2.0)
        ledger.add("window", "warm", 1.5)
        assert expect(ledger).phase("window").best("warm") <= 1.6
        assert not (expect(ledger).phase("window").best("warm") <= 1.0)

    def test_rtol_loosens_both_directions(self):
        ledger = PerfLedger()
        ledger.add("CD", "serial", 1.0)
        ledger.add("CD", "on", 0.8)  # speedup 1.25
        assert not (expect(ledger).phase("CD").speedup_vs("serial") >= 1.3)
        assert expect(ledger, rtol=0.05).phase("CD").speedup_vs("serial") >= 1.3
        assert expect_value("overhead ratio", 1.025, rtol=0.02) <= 1.01
        assert not (expect_value("overhead ratio", 1.035, rtol=0.02) <= 1.01)

    def test_zero_subject_time_is_infinite_speedup(self):
        ledger = PerfLedger()
        ledger.add("CD", "serial", 1.0)
        ledger.add("CD", "cached", 0.0)
        gate = expect(ledger).phase("CD").speedup_vs("serial") >= 100.0
        assert gate and gate.value == float("inf")


class TestExpectValue:
    def test_scalar_gate_with_detail(self):
        gate = (
            expect_value("sampler self-cost", 0.004, detail="12 ticks")
            <= 0.01
        )
        assert gate
        assert "12 ticks" in repr(gate)
        assert "sampler self-cost" in repr(gate)
