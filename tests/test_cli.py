"""Command-line interface."""
from __future__ import annotations

import pytest

from repro.cli import main


def test_screen_small_population(capsys):
    rc = main(
        [
            "screen", "--objects", "100", "--seed", "3", "--method", "grid",
            "--duration-s", "300", "--sps", "2", "--threshold-km", "5",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "generated 100 synthetic objects" in out
    assert "grid/vectorized" in out
    assert "phase breakdown" in out


def test_generate_and_screen_catalog(tmp_path, capsys):
    out_file = tmp_path / "cat.tle"
    assert main(["generate", "--objects", "30", "--seed", "1", "--output", str(out_file)]) == 0
    text = out_file.read_text()
    assert text.count("\n1 ") + text.startswith("1 ") >= 30 or "SYNTH-0" in text

    rc = main(
        [
            "screen", "--catalog", str(out_file), "--method", "hybrid",
            "--duration-s", "300", "--hybrid-sps", "10", "--threshold-km", "5",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "loaded 30 objects" in out
    assert "hybrid/vectorized" in out


def test_plan_output(capsys):
    rc = main(["plan", "--objects", "64000", "--budget-gb", "24", "--variant", "hybrid"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "parallel steps" in out
    assert "conjunction map" in out


def test_plan_auto_adjust_visible(capsys):
    rc = main(
        [
            "plan", "--objects", "1024000", "--budget-gb", "24",
            "--variant", "hybrid", "--duration-s", "86400",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "auto-adjusted" in out


def test_missing_subcommand_errors():
    with pytest.raises(SystemExit):
        main([])


def test_screen_rejects_unknown_method():
    with pytest.raises(SystemExit):
        main(["screen", "--method", "octree"])


def test_screen_with_exports(tmp_path, capsys):
    csv_path = tmp_path / "out.csv"
    cdm_path = tmp_path / "out.cdm"
    rc = main(
        [
            "screen", "--objects", "200", "--seed", "21", "--method", "grid",
            "--duration-s", "600", "--sps", "2", "--threshold-km", "10",
            "--output", str(csv_path), "--cdm", str(cdm_path),
        ]
    )
    assert rc == 0
    assert csv_path.read_text().startswith("object_i,object_j,tca_s,pca_km")
    out = capsys.readouterr().out
    assert "conjunction rows" in out
    assert "CDM records" in out


def test_screen_with_report_flag(capsys):
    rc = main(
        [
            "screen", "--objects", "300", "--seed", "7", "--method", "grid",
            "--duration-s", "600", "--sps", "2", "--threshold-km", "10", "--report",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "phase budget" in out


def test_screen_with_trace_and_metrics(tmp_path, capsys):
    import json

    from tests.obs.schema import validate_trace_file

    trace_path = tmp_path / "trace.json"
    jsonl_path = tmp_path / "trace.jsonl"
    rc = main(
        [
            "screen", "--objects", "200", "--seed", "21", "--method", "hybrid",
            "--duration-s", "300", "--threshold-km", "5",
            "--trace", str(trace_path), "--trace-jsonl", str(jsonl_path), "--metrics",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "spans to" in out and "funnel 'screen'" in out
    # The written trace passes the same validators the CI smoke job runs.
    assert validate_trace_file(str(trace_path)) == []
    lines = [json.loads(line) for line in jsonl_path.read_text().splitlines()]
    assert lines[0]["type"] == "meta"
    assert {rec["type"] for rec in lines} >= {"meta", "span", "metrics", "funnel"}


def test_screen_hashmap_grid_impl_flag(capsys):
    rc = main(
        [
            "screen", "--objects", "150", "--seed", "5", "--method", "grid",
            "--duration-s", "300", "--sps", "2", "--threshold-km", "10",
            "--grid-impl", "hashmap", "--metrics",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "hashmap.probe_length" in out


def test_screen_multidevice_serial(capsys):
    rc = main(
        ["screen", "--objects", "50", "--seed", "3", "--method", "grid",
         "--duration-s", "300", "--threshold-km", "5", "--sps", "2",
         "--n-devices", "2"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "sharded over 2 devices (serial executor)" in out
    assert "device 0:" in out and "device 1:" in out
    assert "grid-multidevice" in out


def test_screen_multidevice_processes_executor(capsys):
    rc = main(
        ["screen", "--objects", "30", "--seed", "3", "--method", "grid",
         "--duration-s", "200", "--threshold-km", "5", "--sps", "2",
         "--n-devices", "2", "--executor", "processes"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "sharded over 2 devices (processes executor)" in out


def test_screen_n_devices_requires_grid_method():
    with pytest.raises(SystemExit, match="--method grid"):
        main(["screen", "--objects", "20", "--method", "hybrid",
              "--n-devices", "2"])


def test_screen_executor_requires_n_devices(monkeypatch):
    monkeypatch.delenv("REPRO_NUM_PROCS", raising=False)
    with pytest.raises(SystemExit, match="--executor requires --n-devices"):
        main(["screen", "--objects", "20", "--method", "grid",
              "--duration-s", "200", "--executor", "processes"])


def test_screen_executor_processes_honours_env_procs(monkeypatch, capsys):
    """Without --n-devices, REPRO_NUM_PROCS supplies the device count."""
    monkeypatch.setenv("REPRO_NUM_PROCS", "2")
    rc = main(
        ["screen", "--objects", "30", "--seed", "7", "--method", "grid",
         "--duration-s", "200", "--threshold-km", "5", "--sps", "2",
         "--executor", "processes"]
    )
    assert rc == 0
    assert "sharded over 2 devices (processes executor)" in capsys.readouterr().out


def test_screen_n_devices_flag_wins_over_env_procs(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_NUM_PROCS", "4")
    rc = main(
        ["screen", "--objects", "30", "--seed", "7", "--method", "grid",
         "--duration-s", "200", "--threshold-km", "5", "--sps", "2",
         "--n-devices", "2", "--executor", "processes"]
    )
    assert rc == 0
    assert "sharded over 2 devices (processes executor)" in capsys.readouterr().out


def test_screen_invalid_env_procs_fails_actionably(monkeypatch):
    """A bad REPRO_NUM_PROCS exits naming the variable, same as the
    REPRO_NUM_THREADS contract — not a bare int() traceback."""
    monkeypatch.setenv("REPRO_NUM_PROCS", "lots")
    with pytest.raises(SystemExit, match="REPRO_NUM_PROCS"):
        main(["screen", "--objects", "20", "--method", "grid",
              "--duration-s", "200", "--executor", "processes"])


def test_screen_rejects_unknown_executor():
    with pytest.raises(SystemExit):
        main(["screen", "--method", "grid", "--n-devices", "2",
              "--executor", "mpi"])


def test_screen_heartbeat_and_resource_watermarks(capsys):
    import json

    rc = main(
        ["screen", "--objects", "100", "--seed", "3", "--method", "grid",
         "--duration-s", "300", "--sps", "2", "--threshold-km", "5",
         "--heartbeat", "60", "--sample-resources"]
    )
    assert rc == 0
    captured = capsys.readouterr()
    assert "resource watermarks: peak RSS" in captured.out
    # stop() emits a final beat even when no interval elapsed.
    beats = [json.loads(line) for line in captured.err.splitlines() if line]
    assert beats and beats[-1]["type"] == "heartbeat"
    assert beats[-1]["rss_bytes"] > 0


def _write_trace(tmp_path, name="trace.json", seed=21):
    path = tmp_path / name
    assert main(
        ["screen", "--objects", "150", "--seed", str(seed), "--method", "grid",
         "--duration-s", "300", "--sps", "2", "--threshold-km", "5",
         "--trace", str(path)]
    ) == 0
    return path


def test_analyze_trace_with_check_and_diff(tmp_path, capsys):
    trace = _write_trace(tmp_path)
    other = _write_trace(tmp_path, name="other.json", seed=22)
    capsys.readouterr()  # drop the screen output
    rc = main(["analyze", str(trace), "--check", "--diff", str(other)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "overlap report" in out
    assert "critical path (wall" in out
    assert "per-phase time (inclusive / exclusive):" in out
    assert "phase:" in out
    assert f"diff vs {other}" in out
    assert "checks passed" in out


def test_analyze_empty_trace_errors(tmp_path):
    from repro.obs import Tracer, write_jsonl

    path = tmp_path / "empty.jsonl"
    write_jsonl(Tracer(), str(path), None)
    with pytest.raises(SystemExit, match="no span records"):
        main(["analyze", str(path)])


def test_ledger_append_and_regression_gate(tmp_path, capsys):
    import json

    from repro.obs.ledger import BenchLedger

    artifact = tmp_path / "BENCH_x.json"
    artifact.write_text(json.dumps({"check_only": True, "speedup": 4.0}))
    rc = main(["ledger", "--results-dir", str(tmp_path), "--append"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "appended 1 artifact entries" in out
    assert "no regressions" in out
    ledger_path = tmp_path / "BENCH_ledger.json"
    assert BenchLedger.load(str(ledger_path)).entries[0]["artifact"] == "BENCH_x"

    # A collapsed speedup (beyond rtol 0.5 of the rolling best) fails the gate.
    artifact.write_text(json.dumps({"check_only": True, "speedup": 1.0}))
    rc = main(["ledger", "--results-dir", str(tmp_path), "--append",
               "--fail-on-regression"])
    assert rc == 1
    assert "dropped below" in capsys.readouterr().out


def test_ledger_status_without_append(tmp_path, capsys):
    rc = main(["ledger", "--results-dir", str(tmp_path)])
    assert rc == 0
    assert "0 entries" in capsys.readouterr().out
