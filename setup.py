"""Setuptools shim.

All metadata lives in pyproject.toml; this file only enables legacy
editable installs (``pip install -e . --no-use-pep517``) on environments
without the ``wheel`` package, such as offline build hosts.
"""
from setuptools import setup

setup()
